//! Multi-worker runtime for Tofu-partitioned graphs.
//!
//! Executes a [`ShardedGraph`] across `N` OS threads — one per logical
//! device — connected by channels. Each worker owns:
//!
//! - its serial sub-schedule of the sharded graph
//!   ([`ShardedGraph::worker_schedule`]), which is a subsequence of the
//!   global topological order;
//! - a [`BufferPool`] seeded from the static memory planner's
//!   [`BufferPlan`], so the measured footprint can be held against
//!   `tofu-sim`'s `per_device_memory` prediction;
//! - typed send/receive ports for cross-device tensor pieces.
//!
//! Communication follows the §6 invariant the generator establishes: every
//! cross-device data edge enters a `multi_fetch` node, so producers *push*
//! exactly the piece each remote consumer needs (precomputed by
//! [`ShardedGraph::comm_edges`]) and non-fetch nodes only ever read local
//! values. Pushes go over unbounded channels and never block, which rules
//! out send/receive cycles: the earliest unexecuted node across all workers
//! (in global topological order) always has its remote pieces already sent
//! or owed by producers that come strictly earlier, so some worker can
//! always make progress.
//!
//! The run records a [`RunTrace`] — per-op wall-clock events, per-link
//! bytes, per-worker pool peaks — for side-by-side comparison with the
//! simulator's predictions.
//!
//! # Fault tolerance
//!
//! The runtime is built to *fail fast and recover* (DESIGN.md "Failure
//! model"):
//!
//! - **Cooperative abort.** Every worker shares an [`AbortToken`]; the first
//!   failure (kernel error, integrity violation, panic, injected fault)
//!   trips it, and every other worker observes the trip between schedule
//!   steps and inside its receive loop (at [`RunOptions::abort_poll`]
//!   granularity), so a dead peer stops the run in milliseconds instead of
//!   stalling healthy workers for the full `recv_timeout`. The run returns
//!   [`RuntimeError::Failed`] wrapping a [`RunFailure`] that names the
//!   first-failing worker and node and preserves the partial traces.
//! - **Message integrity.** Every [`Msg`] carries the sending worker, a
//!   per-link sequence number and a payload checksum; at
//!   [`IntegrityLevel::Full`] (the default) the receiver checks all three
//!   plus the expected piece (consumer node, input index, block shape)
//!   before stashing, so dropped, duplicated, reordered, misrouted or
//!   corrupted pieces surface as typed [`RuntimeError::Comm`] errors instead
//!   of wrong tensors. [`RunOptions::integrity`] relaxes the per-message
//!   work for trusted transports; fault suites must run at `Full`.
//! - **Zero-copy transport.** Payloads travel as reference-counted
//!   [`PieceRef`]s cut from a per-worker [`PieceSlab`]: the producer
//!   extracts the block once into a recycled buffer, the channel and the
//!   receiver's stash move `Arc`s, and the buffer returns to the slab once
//!   consumed. Send routing is pre-resolved at plan time into a
//!   schedule-indexed table, so the send path performs no map lookups.
//! - **Fault injection.** A [`FaultPlan`] in [`RunOptions`] deterministically
//!   kills or panics a worker at a schedule position, tampers with a chosen
//!   message, or forces a pool over-budget event — so every failure path
//!   above is testable.
//! - **Checkpoint-restart.** A [`CheckpointPolicy`] snapshots worker values
//!   at global-schedule barriers and [`run_with_recovery`] retries a faulted
//!   run with exponential backoff, resuming from the last consistent
//!   checkpoint and replaying owed sends; recovered output is bit-identical
//!   to an undisturbed run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abort;
mod checkpoint;
mod durable;
mod elastic;
mod error;
mod fault;
mod pool;
mod reshard;
mod route;
mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use tofu_core::{FetchPiece, ShardedGraph};
use tofu_graph::{execute_node, plan_buffers, BufferPlan, NodeId, TensorId, TensorKind};
use tofu_obs::{Collector, SpanBuffer, Track};
use tofu_tensor::{Shape, Tensor};

pub use abort::{AbortCause, AbortToken};
pub use checkpoint::{
    AttemptRecord, BackoffSchedule, BarrierUnit, CheckpointPolicy, RecoveryOptions, RecoveryReport,
};
pub use durable::{run_with_durable_recovery, CrashPoint, DurableOptions, DurableReport};
pub use elastic::{
    run_with_elastic_recovery, ElasticPolicy, ElasticReport, ElasticTransition, TransitionKind,
};
pub use error::{RunFailure, RuntimeError};
pub use fault::{
    ChurnEvent, ChurnPlan, Fault, FaultPersistence, FaultPlan, FaultRng, InjectedFault,
    MessageFault,
};
pub use pool::{BufferPool, PieceRef, PieceSlab};
pub use reshard::{gather_shards, resume_from_snapshot, scatter_full, FullSnapshot};
pub use tofu_durable::{
    BlobStore, DirStore, DiskFault, DiskFaultPlan, MemStore, RejectReason, RejectedCheckpoint,
};
pub use trace::{LinkStat, OpEvent, RunTrace, WorkerTrace};

use checkpoint::{checkpoint_cuts, CheckpointStore, ResumePoint};
use fault::{FaultState, StepFault};
use route::{FetchSource, RoutePlan, SendRoute, WorkerRoutes};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// How much per-message verification the receive path performs.
///
/// Payload and byte accounting are identical at every level — only the
/// *checks* differ, so a `Fast` run moves exactly the bytes a `Full` run
/// moves and produces bit-identical output on a healthy transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IntegrityLevel {
    /// Route-slot bounds and double-delivery checks only; trusts the
    /// transport. The per-message cost is two array index checks.
    Fast,
    /// `Fast` plus per-link sequence numbers: detects dropped, duplicated
    /// and reordered pieces, but not payload corruption.
    Sequenced,
    /// Everything: sequence numbers, payload checksums and the plan-time
    /// consumer/input/shape cross-check per message. Required whenever the
    /// fault plan injects message faults — the checks are what turn
    /// tampering into typed errors.
    #[default]
    Full,
}

/// Knobs of a run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Replay the planner with cross-op buffer reuse (the Fig. 7 control
    /// dependencies make this safe; turning it off models the ablation).
    pub buffer_reuse: bool,
    /// How long a worker waits on a remote piece before declaring the run
    /// stalled (guards against a dropped piece with no later traffic on the
    /// link; never hit on healthy runs).
    pub recv_timeout: Duration,
    /// Granularity at which blocked workers poll the shared abort token;
    /// bounds how stale a worker's view of a peer failure can be.
    pub abort_poll: Duration,
    /// Faults to inject (empty by default).
    pub faults: FaultPlan,
    /// Scripted fleet-membership events (empty by default). Only
    /// [`run_with_elastic_recovery`] can honor leaves *and* joins; the plain
    /// run paths reject a non-empty plan rather than silently ignore it.
    pub churn: ChurnPlan,
    /// Snapshot cadence for checkpoint-restart (`None` = no snapshots).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Optional per-worker cap on resident pool bytes; exceeding it fails
    /// the run with a typed over-budget pool error.
    pub pool_budget: Option<u64>,
    /// Per-message verification level (default [`IntegrityLevel::Full`]).
    /// Plans that inject message faults are rejected at any other level.
    pub integrity: IntegrityLevel,
    /// Optional trace sink. When set, every worker emits per-op spans (with
    /// recv-waits nested inside fetch spans), cumulative per-link byte
    /// counters, a pool-occupancy timeline and abort/checkpoint markers onto
    /// its `Track::runtime(device)` lane; attempts and recovery land on
    /// `Track::control()`. `None` (the default) costs one discriminant check
    /// per site — no clock reads, no allocation.
    pub collector: Option<Collector>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            buffer_reuse: true,
            recv_timeout: Duration::from_secs(60),
            abort_poll: Duration::from_millis(5),
            faults: FaultPlan::none(),
            churn: ChurnPlan::none(),
            checkpoint: None,
            pool_budget: None,
            integrity: IntegrityLevel::default(),
            collector: None,
        }
    }
}

/// Everything a run produces: the value of every tensor of the sharded
/// graph (gather the originals with [`ShardedGraph::gather`]) plus the
/// measured trace.
#[derive(Debug)]
pub struct RunOutput {
    /// Value of every tensor, merged across workers.
    pub values: BTreeMap<TensorId, Tensor>,
    /// The measured event trace.
    pub trace: RunTrace,
}

/// One cross-worker message: the extracted piece input `input_index` of
/// `consumer` is waiting for, stamped with the integrity metadata the
/// receiver verifies (sender, per-link sequence number, payload checksum)
/// and the pre-resolved receive slot it lands in. The payload is a shared
/// [`PieceRef`] — sending moves a refcount, never bytes.
struct Msg {
    src: usize,
    seq: u64,
    slot: u32,
    consumer: NodeId,
    input_index: usize,
    checksum: u64,
    piece: PieceRef,
}

/// What one worker thread hands back, success or not.
struct WorkerOutcome {
    /// The (possibly partial) trace; `None` when a panic unwound the worker
    /// before one could be assembled.
    trace: Option<WorkerTrace>,
    values: BTreeMap<TensorId, Arc<Tensor>>,
    /// Per destination: (bytes, messages) pushed.
    sent: Vec<(u64, u64)>,
    /// Transport-slab counters: fresh allocations and freelist reuses.
    slab_allocs: u64,
    slab_reuses: u64,
    error: Option<RuntimeError>,
    /// Time from the abort token tripping to this worker observing it.
    observed: Option<Duration>,
    /// The worker stopped voluntarily at the attempt's yield barrier.
    yielded: bool,
}

/// How one execution attempt ended (when no failure intervened).
pub(crate) enum Attempt {
    /// Ran to completion.
    Done(RunOutput),
    /// Every worker stopped cleanly right after recording checkpoint `ckpt`
    /// — the cooperative pause [`run_with_elastic_recovery`] requests so it
    /// can grow onto a joining device at a consistent barrier.
    Yielded {
        /// The (1-based) checkpoint the attempt paused at.
        ckpt: usize,
    },
}

/// FNV-1a over the payload's f32 bit patterns; cheap and deterministic.
fn payload_checksum(data: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in data {
        h ^= v.to_bits() as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// What the pre-snapshot scan found wrong with a live value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SnapshotDefect {
    /// The value holds a NaN or infinity.
    NonFinite,
    /// The value's bytes no longer hash to the checksum recorded when it was
    /// produced — the buffer was corrupted while sitting in memory.
    ChecksumMismatch,
}

/// Scans a worker's live values right before they are recorded into
/// checkpoint state at barrier position `pos`: values dead before the barrier
/// (`scan_floor[t] < pos`) are unobservable on resume and skipped; the rest
/// must be finite and, when a produce-time checksum was recorded in `sums`,
/// must still hash to it. Returns the first offending tensor.
pub(crate) fn scan_snapshot(
    values: &BTreeMap<TensorId, Arc<Tensor>>,
    sums: &BTreeMap<TensorId, u64>,
    scan_floor: &[usize],
    pos: usize,
) -> std::result::Result<(), (TensorId, SnapshotDefect)> {
    for (t, v) in values {
        if scan_floor[t.0] < pos {
            continue; // dead before the barrier: unobservable on resume
        }
        if v.data().iter().any(|x| !x.is_finite()) {
            return Err((*t, SnapshotDefect::NonFinite));
        }
        if let Some(&sum) = sums.get(t) {
            if payload_checksum(v.data()) != sum {
                return Err((*t, SnapshotDefect::ChecksumMismatch));
            }
        }
    }
    Ok(())
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Up-front validation of the run configuration, so misconfiguration fails
/// with a clear [`RuntimeError::InvalidOptions`] before any thread spawns.
fn validate(sharded: &ShardedGraph, opts: &RunOptions) -> Result<()> {
    let k = sharded.workers;
    let invalid = |m: String| Err(RuntimeError::InvalidOptions(m));
    if k == 0 {
        return invalid("sharded graph declares zero workers".into());
    }
    if opts.recv_timeout.is_zero() {
        return invalid("recv_timeout must be positive (a zero timeout stalls instantly)".into());
    }
    if opts.abort_poll.is_zero() {
        return invalid("abort_poll must be positive".into());
    }
    if !opts.churn.is_empty() {
        return invalid(
            "churn plans script fleet-membership changes; only run_with_elastic_recovery can \
             honor them"
                .into(),
        );
    }
    if !opts.faults.disk.is_empty() {
        return invalid(
            "disk faults target the durable checkpoint store; only run_with_durable_recovery \
             can honor them"
                .into(),
        );
    }
    if let Some(cp) = opts.checkpoint {
        if cp.every == 0 {
            return invalid("checkpoint interval must be positive".into());
        }
    }
    for f in &opts.faults.faults {
        match f.fault {
            Fault::Kill { worker, .. }
            | Fault::Panic { worker, .. }
            | Fault::PoolOverBudget { worker, .. } => {
                if worker >= k {
                    return invalid(format!("fault targets worker {worker} of {k}"));
                }
            }
            Fault::Message { src, dst, .. } => {
                if src >= k || dst >= k {
                    return invalid(format!("message fault targets link {src} -> {dst} of {k}"));
                }
                if src == dst {
                    return invalid(format!("message fault targets self-link {src} -> {dst}"));
                }
                if opts.integrity != IntegrityLevel::Full {
                    return invalid(
                        "message faults need IntegrityLevel::Full; lower levels skip the \
                         checks that detect tampering"
                            .into(),
                    );
                }
            }
        }
    }
    Ok(())
}

/// Executes `sharded` across one thread per worker with default options.
/// `feeds` carries values for the sharded graph's leaf tensors (typically
/// from [`ShardedGraph::scatter`] over the original feeds).
pub fn run(sharded: &ShardedGraph, feeds: &[(TensorId, Tensor)]) -> Result<RunOutput> {
    run_with_options(sharded, feeds, &RunOptions::default())
}

/// [`run`] with explicit options.
pub fn run_with_options(
    sharded: &ShardedGraph,
    feeds: &[(TensorId, Tensor)],
    opts: &RunOptions,
) -> Result<RunOutput> {
    validate(sharded, opts)?;
    let faults = FaultState::new(&opts.faults);
    let store = Mutex::new(CheckpointStore::default());
    let device_map: Vec<usize> = (0..sharded.workers).collect();
    match run_attempt(sharded, feeds, opts, &faults, &store, None, &device_map, None)? {
        Attempt::Done(out) => Ok(out),
        Attempt::Yielded { .. } => {
            Err(RuntimeError::Internal("attempt yielded without a yield barrier".into()))
        }
    }
}

/// [`run_with_options`] plus retry: a faulted run is re-attempted with
/// capped, deterministically jittered backoff (see [`BackoffSchedule`]),
/// resuming from the last *consistent* checkpoint when `opts.checkpoint` is
/// set (and from scratch otherwise). Transient injected faults fire once
/// across all attempts, so the retry observes a healthy world; permanent
/// faults re-fire every attempt — recovering past those takes the elastic
/// ladder of [`run_with_elastic_recovery`] ([`RecoveryOptions::degrade`] is
/// ignored here). The recovered output is bit-identical to an undisturbed
/// run (see DESIGN.md "Failure model" for the argument).
pub fn run_with_recovery(
    sharded: &ShardedGraph,
    feeds: &[(TensorId, Tensor)],
    opts: &RunOptions,
    recovery: &RecoveryOptions,
) -> Result<RecoveryReport> {
    validate(sharded, opts)?;
    if recovery.max_attempts == 0 {
        return Err(RuntimeError::InvalidOptions("max_attempts must be at least 1".into()));
    }
    let faults = FaultState::new(&opts.faults);
    let store = Mutex::new(CheckpointStore::default());
    let device_map: Vec<usize> = (0..sharded.workers).collect();
    let cuts = match opts.checkpoint {
        Some(cp) => checkpoint_cuts(sharded, cp),
        None => Vec::new(),
    };
    let mut failures = Vec::new();
    let mut resumed_from = Vec::new();
    let mut history: Vec<AttemptRecord> = Vec::new();
    let mut backoff = BackoffSchedule::from_recovery(recovery);
    for attempt in 1..=recovery.max_attempts {
        let resume: Option<ResumePoint> = if attempt == 1 {
            None
        } else {
            let s = store.lock();
            let point = s
                .latest_consistent(sharded.workers, cuts.len())
                .map(|ckpt| s.resume_point(ckpt, sharded.workers, &cuts));
            resumed_from.push(point.as_ref().map(|p| p.ckpt));
            point
        };
        if let Some(c) = &opts.collector {
            let name = match (attempt, &resume) {
                (1, _) => format!("attempt {attempt}"),
                (_, Some(p)) => format!("attempt {attempt}: resume from checkpoint {}", p.ckpt),
                (_, None) => format!("attempt {attempt}: restart from scratch"),
            };
            c.instant(Track::control(), "recovery", &name);
        }
        let started = Instant::now();
        let outcome =
            run_attempt(sharded, feeds, opts, &faults, &store, resume.as_ref(), &device_map, None)
                .and_then(|a| match a {
                    Attempt::Done(out) => Ok(out),
                    Attempt::Yielded { .. } => Err(RuntimeError::Internal(
                        "attempt yielded without a yield barrier".into(),
                    )),
                });
        let mut record = AttemptRecord {
            width: sharded.workers,
            devices: device_map.clone(),
            resumed_from: resume.as_ref().map(|p| p.ckpt),
            replan: None,
            reshard: None,
            reshard_bytes: 0,
            detection: None,
            wall: started.elapsed(),
            ok: false,
            yielded: None,
        };
        match outcome {
            Ok(output) => {
                record.ok = true;
                history.push(record);
                return Ok(RecoveryReport {
                    output,
                    attempts: attempt,
                    failures,
                    resumed_from,
                    history,
                });
            }
            Err(RuntimeError::Failed(f)) => {
                record.detection = f.max_detection();
                history.push(record);
                failures.push(*f);
                if attempt < recovery.max_attempts {
                    let delay = backoff.next_delay();
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
            // Configuration errors are not retryable.
            Err(e) => return Err(e),
        }
    }
    let last = failures.pop().expect("every exhausted attempt recorded a failure");
    Err(RuntimeError::Failed(Box::new(last)))
}

/// One execution attempt: spawns the workers, collects their outcomes, and
/// on any failure assembles the [`RunFailure`] post-mortem. `device_map[w]`
/// is the *physical* device logical worker `w` runs on — fault plans target
/// physical devices, so after an elastic shrink the surviving workers keep
/// their fault histories while the dead device's faults vanish with it.
///
/// When `yield_at` is `Some(k)`, every worker stops cleanly right after
/// recording checkpoint `k` (positions before its cut are fully executed,
/// nothing after runs) and the attempt resolves to [`Attempt::Yielded`].
/// This is sound mid-run: with plan-independent barriers a pre-cut consumer
/// only ever needs pieces from pre-cut producers, so every worker reaches
/// its cut without any post-cut work and no send is left owed *within* the
/// prefix. In-flight pieces addressed to post-cut consumers are expected
/// and simply dropped with the channels.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    sharded: &ShardedGraph,
    feeds: &[(TensorId, Tensor)],
    opts: &RunOptions,
    faults: &FaultState,
    store: &Mutex<CheckpointStore>,
    resume: Option<&ResumePoint>,
    device_map: &[usize],
    yield_at: Option<usize>,
) -> Result<Attempt> {
    let k = sharded.workers;
    debug_assert_eq!(device_map.len(), k);

    // Local schedule position of every node within its own worker.
    let mut local_pos = vec![0usize; sharded.graph.num_nodes()];
    for w in 0..k {
        for (i, id) in sharded.worker_schedule(w).iter().enumerate() {
            local_pos[id.0] = i;
        }
    }

    // Every send pre-resolved into a schedule-indexed routing table (slot
    // assignment, per-position route spans, receiver-side expectations and
    // pre-decoded fetch assemblies); the hot loops below never consult the
    // graph for routing again.
    let routes = RoutePlan::new(sharded, &local_pos, resume.map(|r| r.cuts.as_slice()));

    // Checkpoint barriers: per worker, which checkpoint ids to record at
    // which local schedule position.
    let cuts: Vec<Vec<usize>> = match opts.checkpoint {
        Some(cp) => checkpoint_cuts(sharded, cp),
        None => Vec::new(),
    };
    let mut ckpts_at: Vec<BTreeMap<usize, Vec<usize>>> = vec![BTreeMap::new(); k];
    for (ki, cut) in cuts.iter().enumerate() {
        for (w, map) in ckpts_at.iter_mut().enumerate() {
            map.entry(cut[w]).or_default().push(ki + 1);
        }
    }

    // One channel per worker. Workers share one immutable sender slice —
    // no per-run clone fan-out; a dead worker drops its *receiver*, so a
    // send to it still fails fast, and the abort token (not channel
    // disconnection) is the primary dead-peer signal.
    let mut txs: Vec<Sender<Msg>> = Vec::with_capacity(k);
    let mut rxs: Vec<Receiver<Msg>> = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    let token = AbortToken::new();
    let results: Mutex<Vec<Option<WorkerOutcome>>> = Mutex::new((0..k).map(|_| None).collect());
    // Yield rendezvous: a worker that paused at the yield barrier keeps its
    // receive port alive (parked, not exited) until every worker has reached
    // its own cut — otherwise a peer's pre-cut producer pushing a piece to
    // this worker's *post*-cut consumer would see a hung-up channel.
    let yield_latch = AtomicUsize::new(0);
    let epoch = Instant::now();
    // The collector's clock at this run's epoch: workers translate their
    // epoch-relative `Duration`s into collector microseconds by adding this
    // offset, so traces of successive attempts share one timeline.
    let obs_epoch_us = opts.collector.as_ref().map(|c| c.now_us()).unwrap_or(0.0);

    std::thread::scope(|scope| {
        for (w, rx) in rxs.into_iter().enumerate() {
            let txs = txs.as_slice();
            let worker_routes = &routes.workers[w];
            let results = &results;
            let token = token.clone();
            let ckpts_at = &ckpts_at[w];
            let store = opts.checkpoint.map(|_| store);
            let resume_data = resume.map(|r| (r.cuts[w], &r.values[w]));
            let yield_latch = &yield_latch;
            scope.spawn(move || {
                let outcome = run_worker(
                    sharded, w, feeds, rx, txs, epoch, obs_epoch_us, opts, faults, &token,
                    ckpts_at, store, resume_data, worker_routes, device_map, yield_at,
                    yield_latch,
                );
                if let Some(slot) = results.lock().get_mut(w) {
                    *slot = Some(outcome);
                }
            });
        }
    });
    drop(txs);

    let wall = epoch.elapsed();
    if let Some(c) = &opts.collector {
        c.complete(
            Track::control(),
            "run",
            "attempt",
            obs_epoch_us,
            obs_epoch_us + wall.as_secs_f64() * 1e6,
        );
    }
    let mut workers = Vec::new();
    let mut values: BTreeMap<TensorId, Arc<Tensor>> = BTreeMap::new();
    let mut sent_all: Vec<(usize, Vec<(u64, u64)>)> = Vec::new();
    let mut detection: Vec<(usize, Duration)> = Vec::new();
    let mut errors: Vec<(usize, RuntimeError)> = Vec::new();
    let mut any_yielded = false;
    let (mut slab_allocs, mut slab_reuses) = (0u64, 0u64);
    for (w, slot) in results.into_inner().into_iter().enumerate() {
        let Some(o) = slot else {
            errors.push((w, RuntimeError::Internal(format!("worker {w} vanished"))));
            continue;
        };
        any_yielded |= o.yielded;
        slab_allocs += o.slab_allocs;
        slab_reuses += o.slab_reuses;
        if let Some(t) = o.trace {
            workers.push(t);
        }
        values.extend(o.values);
        if !o.sent.is_empty() {
            sent_all.push((w, o.sent));
        }
        if let Some(d) = o.observed {
            detection.push((w, d));
        }
        if let Some(e) = o.error {
            errors.push((w, e));
        }
    }
    let mut links = Vec::new();
    for (src, per_dst) in &sent_all {
        for (dst, &(bytes, messages)) in per_dst.iter().enumerate() {
            if bytes > 0 || messages > 0 {
                links.push(LinkStat { src: *src, dst, bytes, messages });
            }
        }
    }
    let trace = RunTrace { workers, links, wall };
    if let Some(c) = &opts.collector {
        let copies: u64 = trace.workers.iter().map(|w| w.transport_copy_bytes).sum();
        c.add_total("runtime/transport_copy_bytes", copies as f64);
        c.add_total("runtime/slab_allocs", slab_allocs as f64);
        c.add_total("runtime/slab_reuses", slab_reuses as f64);
    }

    let cause = token.cause();
    if cause.is_none() && errors.is_empty() {
        // A failure always wins over a yield: if any worker died before its
        // cut we fall through to the post-mortem below and the checkpoint
        // stays whatever was consistently recorded.
        if any_yielded {
            let ckpt = yield_at
                .ok_or_else(|| RuntimeError::Internal("worker yielded without a barrier".into()))?;
            return Ok(Attempt::Yielded { ckpt });
        }
        // Success terminates the whole recovery ladder: the store's `Arc`
        // clones are dead weight, and dropping them lets the conversion
        // below reclaim most payloads by move instead of copy.
        if opts.checkpoint.is_some() {
            store.lock().clear();
        }
        let values = values
            .into_iter()
            .map(|(t, v)| (t, Arc::try_unwrap(v).unwrap_or_else(|a| (*a).clone())))
            .collect();
        return Ok(Attempt::Done(RunOutput { values, trace }));
    }
    // The token's cause identifies the *first* failure; that worker's own
    // typed error is the root cause. Workers that stopped because of the
    // abort hold secondary `Aborted` errors.
    let (primary, node, pos, summary) = match &cause {
        Some(c) => (c.worker, c.node, c.pos, c.summary.clone()),
        None => (errors[0].0, None, None, errors[0].1.to_string()),
    };
    let root = errors
        .iter()
        .position(|(w, e)| *w == primary && !matches!(e, RuntimeError::Aborted { .. }))
        .map(|i| errors.swap_remove(i).1)
        .unwrap_or(RuntimeError::Internal(summary));
    Err(RuntimeError::Failed(Box::new(RunFailure {
        worker: primary,
        node,
        pos,
        cause: Box::new(root),
        detection,
        trace,
    })))
}

/// Runs one worker to completion, converting every exit path — success,
/// typed error, panic — into a [`WorkerOutcome`] and tripping the shared
/// abort token on first failure.
#[allow(clippy::too_many_arguments)]
fn run_worker<'a>(
    sharded: &'a ShardedGraph,
    w: usize,
    feeds: &[(TensorId, Tensor)],
    rx: Receiver<Msg>,
    txs: &'a [Sender<Msg>],
    epoch: Instant,
    obs_epoch_us: f64,
    opts: &RunOptions,
    faults: &'a FaultState,
    token: &AbortToken,
    ckpts_at: &'a BTreeMap<usize, Vec<usize>>,
    store: Option<&'a Mutex<CheckpointStore>>,
    resume: Option<(usize, &'a BTreeMap<TensorId, Arc<Tensor>>)>,
    routes: &'a WorkerRoutes,
    device_map: &'a [usize],
    yield_at: Option<usize>,
    yield_latch: &'a AtomicUsize,
) -> WorkerOutcome {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut worker = match Worker::new(
            sharded, w, feeds, rx, txs, epoch, obs_epoch_us, opts, faults, token, ckpts_at,
            store, resume, routes, device_map, yield_at, yield_latch,
        ) {
            Ok(worker) => worker,
            Err(e) => {
                token.trip(AbortCause {
                    worker: w,
                    node: None,
                    pos: None,
                    summary: e.to_string(),
                    at: Instant::now(),
                });
                return WorkerOutcome {
                    trace: None,
                    values: BTreeMap::new(),
                    sent: Vec::new(),
                    slab_allocs: 0,
                    slab_reuses: 0,
                    error: Some(e),
                    observed: None,
                    yielded: false,
                };
            }
        };
        let err = worker.run_inner().err();
        worker.finish(err)
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = panic_message(payload);
            token.trip(AbortCause {
                worker: w,
                node: None,
                pos: None,
                summary: format!("panic: {message}"),
                at: Instant::now(),
            });
            WorkerOutcome {
                trace: None,
                values: BTreeMap::new(),
                sent: Vec::new(),
                slab_allocs: 0,
                slab_reuses: 0,
                error: Some(RuntimeError::WorkerPanic { worker: w, message }),
                observed: None,
                yielded: false,
            }
        }
    }
}

/// One worker's execution state.
struct Worker<'a> {
    sharded: &'a ShardedGraph,
    w: usize,
    /// Physical device this logical worker runs on; fault plans address
    /// physical devices (see `run_attempt`).
    phys: usize,
    /// Logical-to-physical device map for the whole attempt, for addressing
    /// message faults by physical link.
    device_map: &'a [usize],
    /// Scan checkpoint values for NaN/Inf before committing them.
    poison_check: bool,
    schedule: Vec<NodeId>,
    plan: BufferPlan,
    /// Values are shared: checkpoints and resume snapshots hold `Arc`
    /// clones of the same payloads instead of deep copies.
    values: BTreeMap<TensorId, Arc<Tensor>>,
    /// Per tensor: the last local schedule position that reads it
    /// (`usize::MAX` when it stays live to run end — persistent leaves,
    /// comm-edge sources, unconsumed outputs). The checkpoint poison scan
    /// skips tensors dead before the barrier: they cannot influence a
    /// resumed run, and the snapshot still *records* them (bit-identity of
    /// recovered value maps requires every key).
    scan_floor: Vec<usize>,
    /// With `poison_check` on: FNV-1a checksum of each value's payload,
    /// recorded the moment the value was produced (or fed / restored). The
    /// checkpoint barrier re-hashes live values against these, so a buffer
    /// aliased or overwritten after production is caught *before* the
    /// snapshot commits — and long before it could reach disk.
    value_sums: BTreeMap<TensorId, u64>,
    /// Remote pieces that arrived before their consumer needed them,
    /// indexed by the plan-time receive slot.
    pending: Vec<Option<PieceRef>>,
    rx: Receiver<Msg>,
    /// The attempt-wide shared sender slice (own slot included; the run
    /// scope owns the senders, so no per-run clone fan-out).
    txs: &'a [Sender<Msg>],
    /// This worker's pre-resolved routing table.
    routes: &'a WorkerRoutes,
    /// Recycling allocator for outgoing message payloads.
    slab: PieceSlab,
    /// Per-message verification level.
    integrity: IntegrityLevel,
    /// Cached: the fault plan contains at least one message fault, so the
    /// per-send fault scan is worth running at all.
    has_message_faults: bool,
    /// Payload bytes the transport copied beyond the producer's single
    /// block extraction (zero on the fault-free fast path).
    transport_copy_bytes: u64,
    /// Per destination: (bytes, messages) pushed.
    sent: Vec<(u64, u64)>,
    /// Per destination: next sequence number to stamp.
    next_seq: Vec<u64>,
    /// Per source: sequence number the next arrival must carry.
    expect_seq: Vec<u64>,
    bytes_received: u64,
    persistent_bytes: u64,
    pool: BufferPool,
    ops: Vec<OpEvent>,
    busy: Duration,
    epoch: Instant,
    /// Trace buffer on this worker's runtime lane; events accumulate locally
    /// and reach the shared collector in one batch at [`Worker::finish`].
    obs: Option<SpanBuffer>,
    /// Collector microseconds at `epoch` (see `run_attempt`).
    obs_epoch_us: f64,
    recv_timeout: Duration,
    abort_poll: Duration,
    token: AbortToken,
    faults: &'a FaultState,
    ckpts_at: &'a BTreeMap<usize, Vec<usize>>,
    store: Option<&'a Mutex<CheckpointStore>>,
    /// Schedule position execution starts at (non-zero on resume).
    start_pos: usize,
    /// Position / node currently executing, for failure attribution.
    cur_pos: Option<usize>,
    cur_node: Option<NodeId>,
    /// Latency from abort trip to this worker observing it.
    observed: Option<Duration>,
    completed: bool,
    /// Checkpoint barrier to stop cleanly at (elastic grow pause).
    yield_at: Option<usize>,
    /// Set once the yield barrier has been recorded; execution stops.
    yielded: bool,
    /// Rendezvous counter of paused workers (see `run_attempt`).
    yield_latch: &'a AtomicUsize,
}

impl<'a> Worker<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        sharded: &'a ShardedGraph,
        w: usize,
        feeds: &[(TensorId, Tensor)],
        rx: Receiver<Msg>,
        txs: &'a [Sender<Msg>],
        epoch: Instant,
        obs_epoch_us: f64,
        opts: &RunOptions,
        faults: &'a FaultState,
        token: &AbortToken,
        ckpts_at: &'a BTreeMap<usize, Vec<usize>>,
        store: Option<&'a Mutex<CheckpointStore>>,
        resume: Option<(usize, &'a BTreeMap<TensorId, Arc<Tensor>>)>,
        routes: &'a WorkerRoutes,
        device_map: &'a [usize],
        yield_at: Option<usize>,
        yield_latch: &'a AtomicUsize,
    ) -> Result<Worker<'a>> {
        let schedule = sharded.worker_schedule(w);
        let plan = plan_buffers(&sharded.graph, &schedule, opts.buffer_reuse);
        let (start_pos, values) = match resume {
            // The snapshot already holds the feeds plus everything the
            // prefix computed; re-feeding would be redundant. Cloning an
            // `Arc` map shares the payloads with the checkpoint store.
            Some((cut, snap)) => (cut, snap.clone()),
            None => {
                let mut values = BTreeMap::new();
                for (t, v) in feeds {
                    if sharded.device_of_tensor.get(t.0).copied().flatten() != Some(w) {
                        continue;
                    }
                    let meta = sharded.graph.tensor(*t);
                    if meta.kind == TensorKind::Intermediate {
                        return Err(RuntimeError::Internal(format!(
                            "worker {w}: fed tensor {:?} is not a leaf",
                            meta.name
                        )));
                    }
                    if v.shape() != &meta.shape {
                        return Err(RuntimeError::Internal(format!(
                            "worker {w}: fed shape {} for shard {:?} declared {}",
                            v.shape(),
                            meta.name,
                            meta.shape
                        )));
                    }
                    values.insert(*t, Arc::new(v.clone()));
                }
                (0, values)
            }
        };
        // Liveness floor for the checkpoint poison scan: last local read per
        // tensor, forced to "live forever" for persistent leaves and
        // comm-edge sources (their values feed resumes and owed sends).
        let mut scan_floor = vec![usize::MAX; sharded.graph.num_tensors()];
        for (pos, id) in schedule.iter().enumerate() {
            for t in &sharded.graph.node(*id).inputs {
                scan_floor[t.0] = pos;
            }
        }
        for t in &plan.persistent {
            scan_floor[t.0] = usize::MAX;
        }
        for r in routes.startup.iter().chain(routes.sends.iter()) {
            scan_floor[r.tensor.0] = usize::MAX;
        }
        let k = txs.len();
        let mut pool = BufferPool::new(w);
        pool.set_budget(opts.pool_budget);
        let poison_check = opts.checkpoint.map(|cp| cp.poison_check).unwrap_or(false);
        let value_sums = if poison_check {
            values.iter().map(|(t, v)| (*t, payload_checksum(v.data()))).collect()
        } else {
            BTreeMap::new()
        };
        Ok(Worker {
            sharded,
            w,
            phys: device_map[w],
            device_map,
            poison_check,
            schedule,
            plan,
            values,
            scan_floor,
            value_sums,
            pending: vec![None; routes.slots.len()],
            rx,
            txs,
            routes,
            slab: PieceSlab::default(),
            integrity: opts.integrity,
            has_message_faults: faults.has_message_faults(),
            transport_copy_bytes: 0,
            sent: vec![(0, 0); k],
            next_seq: vec![0; k],
            expect_seq: vec![0; k],
            bytes_received: 0,
            persistent_bytes: 0,
            pool,
            ops: Vec::new(),
            busy: Duration::ZERO,
            epoch,
            obs: opts.collector.as_ref().map(|c| c.buffer(Track::runtime(w))),
            obs_epoch_us,
            recv_timeout: opts.recv_timeout,
            abort_poll: opts.abort_poll,
            token: token.clone(),
            faults,
            ckpts_at,
            store,
            start_pos,
            cur_pos: None,
            cur_node: None,
            observed: None,
            completed: false,
            yield_at,
            yielded: false,
            yield_latch,
        })
    }

    /// Parks a paused worker until every worker has reached its own yield
    /// cut (or a failure tripped the abort token), keeping this worker's
    /// receive port alive for peers still executing their prefixes.
    fn yield_park(&self) {
        let k = self.txs.len();
        self.yield_latch.fetch_add(1, Ordering::AcqRel);
        while self.yield_latch.load(Ordering::Acquire) < k && !self.token.is_tripped() {
            std::thread::sleep(self.abort_poll);
        }
    }

    /// Collector microseconds for an epoch-relative duration.
    fn obs_ts(&self, since_epoch: Duration) -> f64 {
        self.obs_epoch_us + since_epoch.as_secs_f64() * 1e6
    }

    /// Converts the finished (or failed) worker into its outcome, tripping
    /// the abort token if this worker failed first.
    fn finish(mut self, err: Option<RuntimeError>) -> WorkerOutcome {
        if let Some(e) = &err {
            if !matches!(e, RuntimeError::Aborted { .. }) {
                if let Some(buf) = self.obs.as_mut() {
                    buf.instant("abort", &format!("worker {} failed: {e}", self.w));
                }
            }
            // A worker that stopped *because of* the abort is not a new
            // failure; everything else races to trip (first wins).
            if !matches!(e, RuntimeError::Aborted { .. }) {
                self.token.trip(AbortCause {
                    worker: self.w,
                    node: self.cur_node,
                    pos: self.cur_pos,
                    summary: e.to_string(),
                    at: Instant::now(),
                });
            }
        }
        // One batched hand-off of everything this worker buffered (flush on
        // drop would also cover it; doing it here keeps the timing visible).
        if let Some(buf) = self.obs.as_mut() {
            buf.flush();
        }
        let trace = WorkerTrace {
            device: self.w,
            ops: std::mem::take(&mut self.ops),
            busy: self.busy,
            pool_peak_bytes: self.pool.peak_bytes(),
            persistent_bytes: self.persistent_bytes,
            bytes_sent: self.sent.iter().map(|&(b, _)| b).sum(),
            bytes_received: self.bytes_received,
            transport_copy_bytes: self.transport_copy_bytes,
            completed: self.completed,
            resumed_from: if self.start_pos > 0 { Some(self.start_pos) } else { None },
        };
        WorkerOutcome {
            trace: Some(trace),
            values: std::mem::take(&mut self.values),
            sent: std::mem::take(&mut self.sent),
            slab_allocs: self.slab.allocs(),
            slab_reuses: self.slab.reuses(),
            error: err,
            observed: self.observed,
            yielded: self.yielded,
        }
    }

    /// Observes the shared abort token; errors with `Aborted` once tripped.
    fn check_abort(&mut self) -> Result<()> {
        if self.token.is_tripped() {
            let cause = self.token.cause().expect("tripped token carries a cause");
            if self.observed.is_none() {
                self.observed = Some(cause.at.elapsed());
                if let Some(buf) = self.obs.as_mut() {
                    buf.instant("abort", &format!("abort observed (worker {} failed)", cause.worker));
                }
            }
            return Err(RuntimeError::Aborted { worker: self.w, by: cause.worker });
        }
        Ok(())
    }

    /// Records every checkpoint whose local cut is `pos` (positions
    /// `[0, pos)` are done). With `poison_check` on, every value still live
    /// at the barrier is scanned for NaN/Inf first and a poisoned snapshot
    /// is *never* committed — a checkpoint exists to be restored from, and
    /// restoring non-finite state would silently poison every later attempt.
    /// Tensors whose last local read precedes the barrier are skipped by the
    /// scan (a resume can never observe them) but stay in the snapshot: the
    /// recorded map is an `Arc` clone of the live one — refcount bumps, no
    /// payload copies — and bit-identity of recovered runs requires every
    /// key to survive.
    ///
    /// The same scan re-hashes each live value and compares it against the
    /// checksum recorded when the value was produced: a mismatch means some
    /// buffer aliased or scribbled over the payload after the fact, and the
    /// snapshot is rejected with [`RuntimeError::CorruptSnapshot`] before it
    /// can be committed (or persisted to disk).
    ///
    /// When the store carries a [`CheckpointSink`], the worker whose record
    /// makes checkpoint `k` consistent drives the sink — outside the store
    /// lock, so persistence I/O never serializes peers' barriers.
    fn take_checkpoints(&mut self, pos: usize) -> Result<()> {
        if let (Some(store), Some(ks)) = (self.store, self.ckpts_at.get(&pos)) {
            if self.poison_check {
                if let Err((t, defect)) =
                    scan_snapshot(&self.values, &self.value_sums, &self.scan_floor, pos)
                {
                    return Err(match defect {
                        SnapshotDefect::NonFinite => RuntimeError::PoisonedCheckpoint {
                            worker: self.w,
                            node: self
                                .sharded
                                .graph
                                .producer(t)
                                .map(|n| self.sharded.graph.node(n).name.clone()),
                            tensor: self.sharded.graph.tensor(t).name.clone(),
                        },
                        SnapshotDefect::ChecksumMismatch => RuntimeError::CorruptSnapshot {
                            worker: self.w,
                            tensor: self.sharded.graph.tensor(t).name.clone(),
                        },
                    });
                }
            }
            let mut to_persist = Vec::new();
            let sink = {
                let mut s = store.lock();
                for &k in ks {
                    s.record(k, self.w, self.values.clone());
                }
                let sink = s.sink();
                if sink.is_some() {
                    // Exactly one worker observes each k become consistent
                    // (its record is the last of the set), so each k is
                    // collected for persistence exactly once.
                    for &k in ks {
                        if let Some(vals) = s.consistent_values(k, self.sharded.workers) {
                            to_persist.push((k, vals));
                        }
                    }
                }
                sink
            };
            if let Some(sink) = sink {
                for (k, vals) in to_persist {
                    sink.on_consistent(self.sharded, self.w, k, &vals)?;
                }
            }
            for &k in ks {
                if let Some(buf) = self.obs.as_mut() {
                    buf.instant("ckpt", &format!("checkpoint {k}"));
                }
            }
            if let Some(y) = self.yield_at {
                if ks.contains(&y) {
                    // The pause barrier is recorded: stop before executing
                    // anything past this cut.
                    self.yielded = true;
                    if let Some(buf) = self.obs.as_mut() {
                        buf.instant("ckpt", &format!("yield at checkpoint {y}"));
                    }
                }
            }
        }
        Ok(())
    }

    fn run_inner(&mut self) -> Result<()> {
        // On resume, bring the pool to its pre-failure state by replaying
        // the plan's prefix (output sizes are static graph metadata).
        for pos in 0..self.start_pos {
            let out = self.sharded.graph.node(self.schedule[pos]).output;
            let bytes = self.sharded.graph.tensor(out).shape.bytes();
            self.pool.apply(self.plan.actions[pos], bytes)?;
        }

        // Resident leaf bytes, measured from the actual fed shards this
        // worker's non-fetch nodes consume.
        let mut persistent_bytes = 0u64;
        for t in &self.plan.persistent {
            let v = self.values.get(t).ok_or_else(|| RuntimeError::MissingFeed {
                worker: self.w,
                tensor: self.sharded.graph.tensor(*t).name.clone(),
            })?;
            persistent_bytes += v.shape().bytes();
        }
        self.persistent_bytes = persistent_bytes;

        // Owned leaf shards other devices fetch go out before any compute;
        // on resume this list also carries the owed snapshot sends.
        let routes = self.routes;
        for r in &routes.startup {
            self.send_route(r)?;
        }

        let last = self.schedule.len().saturating_sub(1);
        // Index-based walk: `NodeId` is `Copy`, so reading one id per step
        // borrows `self.schedule` only momentarily and the `&mut self` calls
        // below don't force a clone of the whole schedule.
        for pos in self.start_pos..self.schedule.len() {
            let id = self.schedule[pos];
            self.check_abort()?;
            self.cur_pos = Some(pos);
            self.cur_node = Some(id);
            self.take_checkpoints(pos)?;
            if self.yielded {
                // Stopping here is clean: every pre-cut producer already
                // ran and pushed its pieces, so no peer still inside its
                // prefix can block on this worker.
                self.cur_pos = None;
                self.cur_node = None;
                self.yield_park();
                return Ok(());
            }
            for f in self.faults.step_faults(self.phys, pos, last, self.start_pos) {
                match f {
                    StepFault::Kill => {
                        return Err(RuntimeError::Injected {
                            worker: self.w,
                            detail: format!("killed at schedule step {pos} (node {})", id.0),
                        })
                    }
                    StepFault::Panic => {
                        panic!("injected panic on worker {} at schedule step {pos}", self.w)
                    }
                    StepFault::PoolOverBudget => {
                        // Clamp below current occupancy: the next apply is
                        // guaranteed to observe an over-budget pool.
                        let clamp = self.pool.current_bytes().saturating_sub(1);
                        self.pool.set_budget(Some(clamp));
                    }
                }
            }
            let node = self.sharded.graph.node(id);
            let start = self.epoch.elapsed();
            let out = if node.op == "multi_fetch" {
                self.assemble_fetch(pos, id)?
            } else {
                let inputs: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|t| {
                        self.values.get(t).map(|v| v.as_ref()).ok_or_else(|| {
                            RuntimeError::MissingFeed {
                                worker: self.w,
                                tensor: self.sharded.graph.tensor(*t).name.clone(),
                            }
                        })
                    })
                    .collect::<Result<_>>()?;
                execute_node(&self.sharded.graph, id, &inputs)
                    .map_err(|source| RuntimeError::Exec { worker: self.w, source })?
            };
            self.pool.apply(self.plan.actions[pos], out.shape().bytes())?;
            let end = self.epoch.elapsed();
            self.busy += end - start;
            self.ops.push(OpEvent { node: id, start, end });
            if self.obs.is_some() {
                let (s_us, e_us) = (self.obs_ts(start), self.obs_ts(end));
                let cat = if node.op == "multi_fetch" { "fetch" } else { "op" };
                let pool_now = self.pool.current_bytes() as f64;
                if let Some(buf) = self.obs.as_mut() {
                    buf.complete(cat, &node.name, s_us, e_us);
                    buf.counter("pool bytes", e_us, pool_now);
                }
            }
            if self.poison_check {
                self.value_sums.insert(node.output, payload_checksum(out.data()));
            }
            self.values.insert(node.output, Arc::new(out));
            let (lo, hi) = routes.spans[pos];
            for r in &routes.sends[lo as usize..hi as usize] {
                self.send_route(r)?;
            }
        }
        self.cur_pos = None;
        self.cur_node = None;
        self.take_checkpoints(self.schedule.len())?;
        if self.yielded {
            // The whole schedule happens to sit before the yield barrier.
            // Skip the end-of-run checks: peers pausing at their own cuts
            // may legitimately leave pieces for this attempt's unexecuted
            // suffix in flight.
            self.yield_park();
            return Ok(());
        }

        // End-of-run integrity: every piece addressed to this worker must
        // have been consumed — a leftover means a duplicated or misrouted
        // message survived to the end. `Fast` skips the sweep entirely: the
        // routing table guarantees a fault-free run sends exactly the pieces
        // the plan owes, so the sweep only ever fires under injected faults
        // (which require `Full` anyway).
        if self.integrity != IntegrityLevel::Fast {
            self.drain_check()?;
        }
        self.pool.verify_against(&self.plan)?;
        self.completed = true;
        Ok(())
    }

    /// Pushes the pre-routed piece `r` (extract into a slab buffer, seal,
    /// stamp, send), applying any injected message fault targeting this link
    /// position. The fast path performs exactly one copy — tensor to slab
    /// buffer — and the channel then carries only the `Arc`.
    fn send_route(&mut self, r: &SendRoute) -> Result<()> {
        let len_elems: usize = r.piece.len.iter().map(|&l| l.max(0) as usize).product();
        let mut buf = self.slab.alloc(len_elems);
        {
            let src = self.values.get(&r.tensor).ok_or_else(|| {
                RuntimeError::Internal(format!(
                    "worker {}: comm edge reads unevaluated tensor {:?}",
                    self.w, r.tensor
                ))
            })?;
            extract_piece_into(src, &r.piece, &mut buf)?;
        }
        let dims: Vec<usize> = r.piece.len.iter().map(|&l| l.max(0) as usize).collect();
        let mut piece = self.slab.seal(Shape::new(dims), buf);
        let bytes = piece.bytes();
        // The checksum covers the *intended* payload; corruption injected
        // below is therefore detectable at the receiver. Lower integrity
        // levels send 0 — the receiver doesn't look at it.
        let checksum = if self.integrity == IntegrityLevel::Full {
            payload_checksum(piece.data())
        } else {
            0
        };
        let index = self.sent[r.dst].1;
        let seq = self.next_seq[r.dst];
        self.next_seq[r.dst] += 1;
        self.sent[r.dst].0 += bytes;
        self.sent[r.dst].1 += 1;
        if self.obs.is_some() {
            let ts = self.obs_ts(self.epoch.elapsed());
            let total = self.sent[r.dst].0 as f64;
            let name = format!("link {}->{} bytes", self.w, r.dst);
            if let Some(buf) = self.obs.as_mut() {
                buf.counter(&name, ts, total);
            }
        }
        // The linear fault-table scan only runs when a message fault is
        // actually armed; fault-free runs skip it per message.
        let action = if self.has_message_faults {
            self.faults.message_action(self.phys, self.device_map[r.dst], index)
        } else {
            None
        };
        match action {
            // Lost on the wire: the sequence number is consumed, so the next
            // message on this link exposes the gap.
            Some(MessageFault::Drop) => return Ok(()),
            Some(MessageFault::Delay(d)) => std::thread::sleep(d),
            Some(MessageFault::Corrupt) => {
                // The sealed payload may be aliased (a duplicate in flight,
                // the slab's reclamation handle) — corrupting it in place
                // would tamper with every holder. Divert through an owned,
                // untracked buffer instead; the copy is charged to the
                // transport-copy counter like any other fault-path copy.
                let mut data = piece.data().to_vec();
                if let Some(v) = data.first_mut() {
                    *v = f32::from_bits(v.to_bits() ^ 0x0040_0000);
                }
                self.transport_copy_bytes += bytes;
                piece = PieceRef::from_vec(piece.shape().clone(), data);
            }
            Some(MessageFault::Duplicate) | None => {}
        }
        if r.dst == self.w {
            return Err(RuntimeError::Internal(
                "comm edge addressed to the sending worker".into(),
            ));
        }
        let tx = &self.txs[r.dst];
        let hung_up = |_| RuntimeError::Comm {
            worker: self.w,
            detail: format!("worker {} hung up", r.dst),
        };
        if action == Some(MessageFault::Duplicate) {
            // Cloning a `PieceRef` bumps a refcount; the payload stays shared.
            tx.send(Msg {
                src: self.w,
                seq,
                slot: r.slot,
                consumer: r.consumer,
                input_index: r.input_index,
                checksum,
                piece: piece.clone(),
            })
            .map_err(hung_up)?;
        }
        tx.send(Msg {
            src: self.w,
            seq,
            slot: r.slot,
            consumer: r.consumer,
            input_index: r.input_index,
            checksum,
            piece,
        })
        .map_err(hung_up)?;
        Ok(())
    }

    /// Executes a `multi_fetch` node: local inputs are copied out of the
    /// worker's own values; remote inputs block on their pre-assigned
    /// receive slot until the (already-extracted) piece arrives. The
    /// assembly plan was decoded once at plan time — no attribute parsing
    /// or graph lookups happen here.
    fn assemble_fetch(&mut self, pos: usize, id: NodeId) -> Result<Tensor> {
        let routes = self.routes;
        let plan = routes.fetches[pos]
            .as_ref()
            .ok_or_else(|| RuntimeError::Internal("assemble on non-fetch node".into()))?;
        let node = self.sharded.graph.node(id);
        let out_shape = self.sharded.graph.tensor(node.output).shape.clone();
        let mut out = Tensor::zeros(out_shape);
        for (i, input) in plan.inputs.iter().enumerate() {
            let p = &input.piece;
            match input.source {
                FetchSource::Local(t) => {
                    let src = self.values.get(&t).ok_or_else(|| {
                        RuntimeError::Internal(format!(
                            "worker {}: fetch reads unevaluated local {t:?}",
                            self.w
                        ))
                    })?;
                    copy_block(&mut out, src.as_ref(), &p.src_begin, &p.dst_begin, &p.len);
                }
                FetchSource::Remote { slot } => {
                    // Time the blocking receive separately so a trace splits
                    // a fetch node's span into recv-wait vs assembly.
                    let wait_start = self.obs.as_ref().map(|_| self.epoch.elapsed());
                    let piece = self.recv_piece(slot, id, i)?;
                    if let Some(ws) = wait_start {
                        let (s_us, e_us) = (self.obs_ts(ws), self.obs_ts(self.epoch.elapsed()));
                        let name = format!("recv {}[{i}]", self.sharded.graph.node(id).name);
                        if let Some(buf) = self.obs.as_mut() {
                            buf.complete("wait", &name, s_us, e_us);
                        }
                    }
                    self.bytes_received += piece.bytes();
                    // The producer already extracted the block: source
                    // offsets are zero in the received piece's coordinates.
                    copy_piece_block(&mut out, &piece, &p.dst_begin, &p.len);
                }
            }
        }
        Ok(out)
    }

    /// Validates an arriving message (link sequence, payload checksum,
    /// expected piece — depending on the configured integrity level) and
    /// stashes it in its receive slot. At [`IntegrityLevel::Fast`] only the
    /// slot-occupancy check remains, and that is required for correctness,
    /// not integrity: a slot holds exactly one piece per attempt.
    fn accept(&mut self, msg: Msg) -> Result<()> {
        let routes = self.routes;
        let comm = |detail: String| RuntimeError::Comm { worker: self.w, detail };
        let slot = msg.slot as usize;
        let Some(expect) = routes.slots.get(slot) else {
            return Err(comm(format!(
                "link {} -> {}: piece carries unknown receive slot {slot}",
                msg.src, self.w
            )));
        };
        if self.integrity != IntegrityLevel::Fast {
            let expected = self.expect_seq[msg.src];
            if msg.seq != expected {
                return Err(comm(format!(
                    "link {} -> {}: message carries seq {} but {} was expected ({})",
                    msg.src,
                    self.w,
                    msg.seq,
                    expected,
                    if msg.seq < expected {
                        "a piece was duplicated or reordered"
                    } else {
                        "a piece was dropped"
                    }
                )));
            }
            self.expect_seq[msg.src] = expected + 1;
        }
        if self.integrity == IntegrityLevel::Full {
            if payload_checksum(msg.piece.data()) != msg.checksum {
                return Err(comm(format!(
                    "link {} -> {}: piece for node {} input {} failed its checksum \
                     (payload corrupted in transit)",
                    msg.src, self.w, msg.consumer.0, msg.input_index
                )));
            }
            // Expected-piece check against the plan-time routing table: the
            // stamped sender, consumer and input index must match what the
            // slot was assigned to carry, and the payload must be exactly
            // the block shape the generator planned.
            if msg.src != expect.src
                || msg.consumer != expect.consumer
                || msg.input_index != expect.input_index
            {
                return Err(comm(format!(
                    "link {} -> {}: piece stamped for node {} input {} landed in slot \
                     {slot}, which expects node {} input {} from worker {}",
                    msg.src,
                    self.w,
                    msg.consumer.0,
                    msg.input_index,
                    expect.consumer.0,
                    expect.input_index,
                    expect.src
                )));
            }
            if msg.piece.shape().dims() != expect.dims.as_slice() {
                return Err(comm(format!(
                    "link {} -> {}: piece for node {} input {} has shape {} but block \
                     {:?} was expected",
                    msg.src,
                    self.w,
                    msg.consumer.0,
                    msg.input_index,
                    msg.piece.shape(),
                    expect.dims
                )));
            }
        }
        if self.pending[slot].is_some() {
            return Err(comm(format!(
                "link {} -> {}: second piece for node {} input {} (duplicate)",
                msg.src, self.w, expect.consumer.0, expect.input_index
            )));
        }
        self.pending[slot] = Some(msg.piece);
        Ok(())
    }

    /// The piece for `slot`, from the stash or the wire. Polls the abort
    /// token at `abort_poll` granularity while waiting, so a peer failure is
    /// observed in milliseconds rather than `recv_timeout`.
    fn recv_piece(&mut self, slot: u32, consumer: NodeId, input_index: usize) -> Result<PieceRef> {
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            if let Some(v) = self.pending[slot as usize].take() {
                return Ok(v);
            }
            self.check_abort()?;
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Comm {
                    worker: self.w,
                    detail: format!(
                        "stalled {:?} waiting for node {} input {input_index}",
                        self.recv_timeout, consumer.0
                    ),
                });
            }
            match self.rx.recv_timeout(self.abort_poll.min(deadline - now)) {
                Ok(msg) => self.accept(msg)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    self.check_abort()?;
                    return Err(RuntimeError::Comm {
                        worker: self.w,
                        detail: "every peer hung up".into(),
                    });
                }
            }
        }
    }

    /// End-of-run check: the receive port and every stash slot must be empty.
    fn drain_check(&mut self) -> Result<()> {
        while let Ok(msg) = self.rx.try_recv() {
            // A late arrival still goes through the integrity checks — a
            // duplicate trips the sequence check right here.
            self.accept(msg)?;
        }
        if let Some(slot) = self.pending.iter().position(|p| p.is_some()) {
            let e = &self.routes.slots[slot];
            return Err(RuntimeError::Comm {
                worker: self.w,
                detail: format!(
                    "piece for node {} input {} was never consumed \
                     (duplicated or misrouted message)",
                    e.consumer.0, e.input_index
                ),
            });
        }
        Ok(())
    }
}

/// Row-major strides for `dims` (innermost stride 1).
fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for d in (0..dims.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * dims[d + 1];
    }
    strides
}

/// Slices the block `[src_begin, src_begin + len)` of `src` into `out`,
/// appending rows with `extend_from_slice`. `out` should arrive empty with
/// capacity for the whole block — the send path reuses slab buffers here, so
/// extraction never clones the source tensor.
fn extract_piece_into(src: &Tensor, p: &FetchPiece, out: &mut Vec<f32>) -> Result<()> {
    let dims = src.shape().dims().to_vec();
    if p.src_begin.len() != dims.len() || p.len.len() != dims.len() {
        return Err(RuntimeError::Internal(format!(
            "piece extraction: rank mismatch (tensor rank {}, piece rank {})",
            dims.len(),
            p.len.len()
        )));
    }
    for (d, (&b, &l)) in p.src_begin.iter().zip(&p.len).enumerate() {
        if b < 0 || l < 0 || (b + l) as usize > dims[d] {
            return Err(RuntimeError::Internal(format!(
                "piece extraction: block [{b}, {}) exceeds dimension {d} of extent {}",
                b + l,
                dims[d]
            )));
        }
    }
    let data = src.data();
    let rank = dims.len();
    if rank == 0 {
        out.push(data[0]);
        return Ok(());
    }
    if p.len.contains(&0) {
        return Ok(());
    }
    let strides = src.shape().strides();
    let row = p.len[rank - 1] as usize;
    let mut off: usize = p.src_begin.iter().zip(&strides).map(|(&b, &s)| b as usize * s).sum();
    let mut idx = vec![0usize; rank - 1];
    'rows: loop {
        out.extend_from_slice(&data[off..off + row]);
        // Odometer over the outer dimensions.
        let mut d = rank - 1;
        while d > 0 {
            d -= 1;
            idx[d] += 1;
            off += strides[d];
            if idx[d] < p.len[d] as usize {
                continue 'rows;
            }
            idx[d] = 0;
            off -= strides[d] * p.len[d] as usize;
        }
        break;
    }
    Ok(())
}

/// Slices the block `[src_begin, src_begin + len)` out of `src` into a
/// freshly shaped tensor. Copies only the block — never the whole source.
pub fn extract_piece(src: &Tensor, p: &FetchPiece) -> Result<Tensor> {
    let volume: usize = p.len.iter().map(|&l| l.max(0) as usize).product();
    let mut out = Vec::with_capacity(volume);
    extract_piece_into(src, p, &mut out)?;
    let dims: Vec<usize> = p.len.iter().map(|&l| l.max(0) as usize).collect();
    Tensor::from_vec(Shape::new(dims), out)
        .map_err(|e| RuntimeError::Internal(format!("piece extraction: {e}")))
}

/// The shared row-copy core of [`copy_block`] / [`copy_piece_block`]: moves
/// the `len`-sized block at `src_begin` of the `src_strides`-shaped buffer to
/// `dst_begin` of the `dst_strides`-shaped one, one contiguous innermost row
/// per `copy_from_slice`.
fn copy_block_raw(
    dst: &mut [f32],
    dst_strides: &[usize],
    src: &[f32],
    src_strides: &[usize],
    src_begin: &[i64],
    dst_begin: &[i64],
    len: &[i64],
) {
    let rank = len.len();
    if rank == 0 {
        let dst_off: usize = dst_begin.iter().zip(dst_strides).map(|(&b, &s)| b as usize * s).sum();
        let src_off: usize = src_begin.iter().zip(src_strides).map(|(&b, &s)| b as usize * s).sum();
        dst[dst_off] = src[src_off];
        return;
    }
    if len.iter().any(|&l| l <= 0) {
        return;
    }
    let row = len[rank - 1] as usize;
    let mut src_off: usize = src_begin.iter().zip(src_strides).map(|(&b, &s)| b as usize * s).sum();
    let mut dst_off: usize = dst_begin.iter().zip(dst_strides).map(|(&b, &s)| b as usize * s).sum();
    let mut idx = vec![0usize; rank - 1];
    'rows: loop {
        dst[dst_off..dst_off + row].copy_from_slice(&src[src_off..src_off + row]);
        // Odometer over the outer dimensions.
        let mut d = rank - 1;
        while d > 0 {
            d -= 1;
            idx[d] += 1;
            src_off += src_strides[d];
            dst_off += dst_strides[d];
            if idx[d] < len[d] as usize {
                continue 'rows;
            }
            idx[d] = 0;
            src_off -= src_strides[d] * len[d] as usize;
            dst_off -= dst_strides[d] * len[d] as usize;
        }
        break;
    }
}

/// Copies the `len`-sized block at `src_begin` of `src` to `dst_begin` of
/// `dst`. Both tensors are dense row-major, so the block's innermost
/// dimension is contiguous in both and is moved with one slice copy per row
/// (this is the hot path of every `multi_fetch` assembly).
///
/// The block must lie within both tensors' bounds; offsets and extents are
/// element counts per dimension, matching [`FetchPiece`]'s encoding.
pub fn copy_block(dst: &mut Tensor, src: &Tensor, src_begin: &[i64], dst_begin: &[i64], len: &[i64]) {
    let src_strides = src.shape().strides();
    let dst_strides = dst.shape().strides();
    copy_block_raw(
        dst.data_mut(),
        &dst_strides,
        src.data(),
        &src_strides,
        src_begin,
        dst_begin,
        len,
    );
}

/// Copies a received piece (a whole extracted block, offsets zero in its own
/// coordinates) into `dst` at `dst_begin`.
fn copy_piece_block(dst: &mut Tensor, piece: &PieceRef, dst_begin: &[i64], len: &[i64]) {
    let src_strides = row_major_strides(piece.shape().dims());
    let dst_strides = dst.shape().strides();
    let zeros = vec![0i64; len.len()];
    copy_block_raw(
        dst.data_mut(),
        &dst_strides,
        piece.data(),
        &src_strides,
        &zeros,
        dst_begin,
        len,
    );
}

#[cfg(test)]
mod snapshot_guard_tests {
    use super::*;

    fn arc(data: Vec<f32>) -> Arc<Tensor> {
        Arc::new(Tensor::from_vec(Shape::new(vec![data.len()]), data).unwrap())
    }

    #[test]
    fn clean_values_pass() {
        let values: BTreeMap<TensorId, Arc<Tensor>> =
            [(TensorId(0), arc(vec![1.0, 2.0])), (TensorId(1), arc(vec![-0.0, 3.5]))].into();
        let sums: BTreeMap<TensorId, u64> =
            values.iter().map(|(t, v)| (*t, payload_checksum(v.data()))).collect();
        assert_eq!(scan_snapshot(&values, &sums, &[10, 10], 5), Ok(()));
    }

    #[test]
    fn stale_checksum_is_corruption() {
        // Record the checksum of one payload, then "corrupt" the buffer by
        // swapping in different bytes — the scan must flag it.
        let good = arc(vec![1.0, 2.0]);
        let sums: BTreeMap<TensorId, u64> =
            [(TensorId(0), payload_checksum(good.data()))].into();
        let corrupted: BTreeMap<TensorId, Arc<Tensor>> =
            [(TensorId(0), arc(vec![1.0, 2.000001]))].into();
        assert_eq!(
            scan_snapshot(&corrupted, &sums, &[10], 5),
            Err((TensorId(0), SnapshotDefect::ChecksumMismatch))
        );
    }

    #[test]
    fn nonfinite_beats_checksum() {
        // A NaN payload is poison even if its checksum happens to match.
        let bad = arc(vec![f32::NAN]);
        let sums: BTreeMap<TensorId, u64> =
            [(TensorId(0), payload_checksum(bad.data()))].into();
        let values: BTreeMap<TensorId, Arc<Tensor>> = [(TensorId(0), bad)].into();
        assert_eq!(
            scan_snapshot(&values, &sums, &[10], 5),
            Err((TensorId(0), SnapshotDefect::NonFinite))
        );
    }

    #[test]
    fn dead_values_are_skipped() {
        // Dead before the barrier: even a corrupt value is unobservable.
        let values: BTreeMap<TensorId, Arc<Tensor>> = [(TensorId(0), arc(vec![f32::NAN]))].into();
        let sums: BTreeMap<TensorId, u64> = [(TensorId(0), 0xdead)].into();
        assert_eq!(scan_snapshot(&values, &sums, &[3], 5), Ok(()));
    }

    #[test]
    fn missing_sum_only_checks_finiteness() {
        // poison_check runs without recorded sums for resumed values.
        let values: BTreeMap<TensorId, Arc<Tensor>> = [(TensorId(0), arc(vec![4.0]))].into();
        assert_eq!(scan_snapshot(&values, &BTreeMap::new(), &[10], 5), Ok(()));
    }
}
