//! Per-tenant fair scheduling with admission control.
//!
//! The serve queue is not FIFO: one tenant submitting a burst of cold
//! requests must not starve another tenant's single request behind it.
//! [`FairScheduler`] keeps one FIFO queue per tenant and services tenants
//! round-robin — each turn of the rotation pops exactly one item from the
//! front tenant's queue, so a tenant with 100 queued requests and a tenant
//! with 1 alternate until the second is drained.
//!
//! Admission control is a hard cap on the *total* queued items: when the cap
//! is reached, [`FairScheduler::push`] rejects the item and hands it back to
//! the caller (the server answers `overloaded`), bounding both memory and
//! worst-case queueing delay.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

struct SchedState<T> {
    /// One FIFO per tenant; entries are removed when a tenant drains.
    queues: HashMap<String, VecDeque<T>>,
    /// Round-robin rotation of tenants that currently have queued items.
    rotation: VecDeque<String>,
    /// Total queued items across all tenants.
    queued: usize,
    /// Set once by [`FairScheduler::close`]; wakes and drains all poppers.
    closed: bool,
}

/// A bounded, tenant-fair MPMC queue (mutex + condvar; no busy waiting).
pub struct FairScheduler<T> {
    state: Mutex<SchedState<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> FairScheduler<T> {
    /// Creates a scheduler admitting at most `cap` queued items in total.
    /// A cap of zero rejects every push (useful to force `overloaded`).
    pub fn new(cap: usize) -> FairScheduler<T> {
        FairScheduler {
            state: Mutex::new(SchedState {
                queues: HashMap::new(),
                rotation: VecDeque::new(),
                queued: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Enqueues one item for a tenant. `Err(item)` means the queue is at
    /// capacity (or closed) and the item was NOT admitted — the caller owns
    /// it again and should reject the request.
    pub fn push(&self, tenant: &str, item: T) -> Result<(), T> {
        let mut st = self.state.lock().expect("scheduler lock");
        if st.closed || st.queued >= self.cap {
            return Err(item);
        }
        let q = st.queues.entry(tenant.to_string()).or_default();
        let was_empty = q.is_empty();
        q.push_back(item);
        st.queued += 1;
        if was_empty {
            st.rotation.push_back(tenant.to_string());
        }
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next item round-robin across tenants, blocking while the
    /// queue is empty. Returns `None` once the scheduler is closed and
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("scheduler lock");
        loop {
            if let Some(tenant) = st.rotation.pop_front() {
                let q = st.queues.get_mut(&tenant).expect("rotation tenant has a queue");
                let item = q.pop_front().expect("rotation tenant queue nonempty");
                let drained = q.is_empty();
                st.queued -= 1;
                if drained {
                    st.queues.remove(&tenant);
                } else {
                    st.rotation.push_back(tenant);
                }
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("scheduler wait");
        }
    }

    /// Closes the queue: subsequent pushes fail, and poppers return `None`
    /// once the remaining items are drained.
    pub fn close(&self) {
        self.state.lock().expect("scheduler lock").closed = true;
        self.ready.notify_all();
    }

    /// Total queued items right now (racy by nature; for stats only).
    pub fn queued(&self) -> usize {
        self.state.lock().expect("scheduler lock").queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_robin_across_tenants() {
        let s = FairScheduler::new(16);
        for item in ["a1", "a2", "a3"] {
            s.push("alice", item).unwrap();
        }
        s.push("bob", "b1").unwrap();
        s.push("carol", "c1").unwrap();
        // alice was first, then bob and carol each get a turn before alice's
        // backlog continues.
        assert_eq!(s.pop(), Some("a1"));
        assert_eq!(s.pop(), Some("b1"));
        assert_eq!(s.pop(), Some("c1"));
        assert_eq!(s.pop(), Some("a2"));
        assert_eq!(s.pop(), Some("a3"));
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn per_tenant_order_is_fifo() {
        let s = FairScheduler::new(16);
        for i in 0..5 {
            s.push("t", i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(s.pop(), Some(i));
        }
    }

    #[test]
    fn cap_rejects_and_returns_item() {
        let s = FairScheduler::new(2);
        s.push("a", 1).unwrap();
        s.push("b", 2).unwrap();
        assert_eq!(s.push("c", 3), Err(3));
        // Draining one slot readmits.
        assert!(s.pop().is_some());
        s.push("c", 3).unwrap();
    }

    #[test]
    fn zero_cap_rejects_everything() {
        let s = FairScheduler::new(0);
        assert_eq!(s.push("a", 1), Err(1));
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let s = Arc::new(FairScheduler::<u32>::new(4));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || s.pop()));
        }
        // Give the poppers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
        assert_eq!(s.push("a", 1), Err(1));
    }

    #[test]
    fn close_drains_remaining_items() {
        let s = FairScheduler::new(4);
        s.push("a", 1).unwrap();
        s.push("a", 2).unwrap();
        s.close();
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), None);
    }
}
