//! Multi-layer LSTM language-model training graphs (§7.1, Table 2, Fig. 9).
//!
//! Follows the large-LM recipe the paper cites ([20]): `layers` stacked LSTM
//! layers of `hidden` units, unrolled for `steps = 20` timesteps. The unroll
//! helper tags every node with its timestep and cell position — the same
//! structure MXNet's built-in unroll produces — which is what lets Tofu's
//! coarsening pass merge timesteps into a chain of coalesced operators
//! (§5.1).

use tofu_graph::{autodiff, Attrs, Graph, NodeTags, TensorId};
use tofu_tensor::Shape;

use crate::BuiltModel;

/// Configuration of the LSTM language model.
#[derive(Debug, Clone, Copy)]
pub struct RnnConfig {
    /// Number of stacked LSTM layers (the paper evaluates 4-10).
    pub layers: usize,
    /// Hidden size (4096, 6144, 8192 in the paper).
    pub hidden: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Unrolled timesteps (20 in the paper).
    pub steps: usize,
    /// Input embedding width fed to the first layer.
    pub embed: usize,
    /// Output vocabulary of the per-timestep projection.
    pub vocab: usize,
    /// Add SGD updates.
    pub with_updates: bool,
}

impl RnnConfig {
    /// The paper's notation, e.g. `RNN-8-8K`.
    pub fn name(&self) -> String {
        if self.hidden.is_multiple_of(1024) {
            format!("RNN-{}-{}K", self.layers, self.hidden / 1024)
        } else {
            format!("RNN-{}-{}", self.layers, self.hidden)
        }
    }
}

impl Default for RnnConfig {
    fn default() -> Self {
        RnnConfig {
            layers: 2,
            hidden: 64,
            batch: 8,
            steps: 4,
            embed: 32,
            vocab: 32,
            with_updates: true,
        }
    }
}

/// One LSTM cell step; all nodes are tagged with `(timestep, cell_position)`
/// so coarsening can coalesce the unrolled instances.
#[allow(clippy::too_many_arguments)]
fn lstm_cell(
    g: &mut Graph,
    layer: usize,
    t: usize,
    x: TensorId,
    h_prev: TensorId,
    c_prev: TensorId,
    wx: TensorId,
    wh: TensorId,
    bias: TensorId,
    hidden: usize,
) -> tofu_graph::Result<(TensorId, TensorId)> {
    let tag = |pos: &str| NodeTags {
        layer: Some(layer),
        timestep: Some(t),
        cell_position: Some(format!("lstm/l{layer}/{pos}")),
        ..NodeTags::default()
    };
    let nm = |pos: &str| format!("l{layer}t{t}/{pos}");
    let xw = g.add_op_tagged("matmul", &nm("xw"), &[x, wx], Attrs::new(), tag("xw"))?;
    let hw = g.add_op_tagged("matmul", &nm("hw"), &[h_prev, wh], Attrs::new(), tag("hw"))?;
    let pre0 = g.add_op_tagged("add", &nm("pre0"), &[xw, hw], Attrs::new(), tag("pre0"))?;
    let pre = g.add_op_tagged(
        "bias_add",
        &nm("pre"),
        &[pre0, bias],
        Attrs::new().with_int("axis", 1),
        tag("pre"),
    )?;
    let gate = |g: &mut Graph, idx: usize, pos: &str| -> tofu_graph::Result<TensorId> {
        g.add_op_tagged(
            "slice_axis",
            &nm(&format!("slice_{pos}")),
            &[pre],
            Attrs::new()
                .with_int("axis", 1)
                .with_int("begin", (idx * hidden) as i64)
                .with_int("end", ((idx + 1) * hidden) as i64),
            tag(&format!("slice_{pos}")),
        )
    };
    let si = gate(g, 0, "i")?;
    let sf = gate(g, 1, "f")?;
    let sg = gate(g, 2, "g")?;
    let so = gate(g, 3, "o")?;
    let i = g.add_op_tagged("sigmoid", &nm("i"), &[si], Attrs::new(), tag("i"))?;
    let f = g.add_op_tagged("sigmoid", &nm("f"), &[sf], Attrs::new(), tag("f"))?;
    let gg = g.add_op_tagged("tanh", &nm("g"), &[sg], Attrs::new(), tag("g"))?;
    let o = g.add_op_tagged("sigmoid", &nm("o"), &[so], Attrs::new(), tag("o"))?;
    let fc = g.add_op_tagged("mul", &nm("fc"), &[f, c_prev], Attrs::new(), tag("fc"))?;
    let ig = g.add_op_tagged("mul", &nm("ig"), &[i, gg], Attrs::new(), tag("ig"))?;
    let c = g.add_op_tagged("add", &nm("c"), &[fc, ig], Attrs::new(), tag("c"))?;
    let ct = g.add_op_tagged("tanh", &nm("ct"), &[c], Attrs::new(), tag("ct"))?;
    let h = g.add_op_tagged("mul", &nm("h"), &[o, ct], Attrs::new(), tag("h"))?;
    Ok((h, c))
}

/// Builds the unrolled multi-layer LSTM training graph.
pub fn rnn(cfg: &RnnConfig) -> tofu_graph::Result<BuiltModel> {
    let mut g = Graph::new();
    let mut weights = Vec::new();
    let mut inputs = Vec::new();

    // Per-layer weights (shared across timesteps — which is exactly why the
    // coalesced timesteps must share a partition).
    let mut layer_weights = Vec::new();
    for l in 0..cfg.layers {
        let in_dim = if l == 0 { cfg.embed } else { cfg.hidden };
        let wx = g.add_weight(&format!("l{l}/wx"), Shape::new(vec![in_dim, 4 * cfg.hidden]));
        let wh = g.add_weight(&format!("l{l}/wh"), Shape::new(vec![cfg.hidden, 4 * cfg.hidden]));
        let b = g.add_weight(&format!("l{l}/b"), Shape::new(vec![4 * cfg.hidden]));
        weights.extend([wx, wh, b]);
        layer_weights.push((wx, wh, b));
    }
    let w_proj = g.add_weight("proj/w", Shape::new(vec![cfg.hidden, cfg.vocab]));
    weights.push(w_proj);

    // Initial states and per-timestep inputs/labels.
    let mut h: Vec<TensorId> = Vec::new();
    let mut c: Vec<TensorId> = Vec::new();
    for l in 0..cfg.layers {
        let h0 = g.add_input(&format!("h0/l{l}"), Shape::new(vec![cfg.batch, cfg.hidden]));
        let c0 = g.add_input(&format!("c0/l{l}"), Shape::new(vec![cfg.batch, cfg.hidden]));
        inputs.extend([h0, c0]);
        h.push(h0);
        c.push(c0);
    }

    let mut losses = Vec::new();
    for t in 0..cfg.steps {
        let x = g.add_input(&format!("x/t{t}"), Shape::new(vec![cfg.batch, cfg.embed]));
        let labels = g.add_input(&format!("labels/t{t}"), Shape::new(vec![cfg.batch]));
        inputs.extend([x, labels]);
        let mut below = x;
        for l in 0..cfg.layers {
            let (wx, wh, b) = layer_weights[l];
            let (nh, nc) = lstm_cell(&mut g, l, t, below, h[l], c[l], wx, wh, b, cfg.hidden)?;
            h[l] = nh;
            c[l] = nc;
            below = nh;
        }
        let tag = |pos: &str| NodeTags {
            timestep: Some(t),
            cell_position: Some(format!("head/{pos}")),
            ..NodeTags::default()
        };
        let logits = g.add_op_tagged(
            "matmul",
            &format!("t{t}/proj"),
            &[below, w_proj],
            Attrs::new(),
            tag("proj"),
        )?;
        let loss_t = g.add_op_tagged(
            "softmax_ce",
            &format!("t{t}/ce"),
            &[logits, labels],
            Attrs::new(),
            tag("ce"),
        )?;
        losses.push(loss_t);
    }

    // Total loss: sum of per-timestep losses.
    let mut loss = losses[0];
    for (t, &l) in losses.iter().enumerate().skip(1) {
        loss = g.add_op("add", &format!("loss_sum{t}"), &[loss, l], Attrs::new())?;
    }

    let info = autodiff::backward(&mut g, loss, &weights)?;
    let grads: Vec<_> =
        weights.iter().filter_map(|&w| info.grad(w).map(|gw| (w, gw))).collect();
    if cfg.with_updates {
        for (i, &(w, gw)) in grads.iter().enumerate() {
            g.add_op("sgd_update", &format!("upd{i}"), &[w, gw], Attrs::new().with_float("lr", 0.01))?;
        }
    }
    Ok(BuiltModel { graph: g, loss, weights, inputs, grads, batch: cfg.batch })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rnn_builds_and_differentiates() {
        let m = rnn(&RnnConfig::default()).unwrap();
        assert_eq!(m.grads.len(), m.weights.len());
        assert_eq!(m.graph.tensor(m.loss).shape.rank(), 0);
    }

    #[test]
    fn node_count_scales_with_unrolling() {
        let short = rnn(&RnnConfig { steps: 2, with_updates: false, ..Default::default() })
            .unwrap()
            .graph
            .num_nodes();
        let long = rnn(&RnnConfig { steps: 8, with_updates: false, ..Default::default() })
            .unwrap()
            .graph
            .num_nodes();
        assert!(long > 3 * short);
    }

    #[test]
    fn weights_are_shared_across_timesteps() {
        let m = rnn(&RnnConfig::default()).unwrap();
        // wx of layer 0 is consumed by every timestep's xw matmul.
        let wx = m.graph.tensor_by_name("l0/wx").unwrap();
        let consumers = m.graph.consumers(wx);
        assert!(consumers.len() >= RnnConfig::default().steps);
    }

    #[test]
    fn paper_notation() {
        let cfg = RnnConfig { layers: 8, hidden: 8192, ..Default::default() };
        assert_eq!(cfg.name(), "RNN-8-8K");
        let odd = RnnConfig { layers: 4, hidden: 100, ..Default::default() };
        assert_eq!(odd.name(), "RNN-4-100");
    }

    #[test]
    fn table2_per_layer_scale() {
        // Table 2's per-layer increment: at H = 8K, adding a layer adds
        // 8H² ≈ 537M parameters ≈ 6.1-6.4 GB of training state.
        let small = rnn(&RnnConfig {
            layers: 2,
            hidden: 8192,
            embed: 1024,
            steps: 1,
            with_updates: false,
            ..Default::default()
        })
        .unwrap()
        .training_state_gb();
        let large = rnn(&RnnConfig {
            layers: 3,
            hidden: 8192,
            embed: 1024,
            steps: 1,
            with_updates: false,
            ..Default::default()
        })
        .unwrap()
        .training_state_gb();
        let delta = large - small;
        assert!((5.5..7.0).contains(&delta), "per-layer delta {delta} GB");
    }

    #[test]
    fn timestep_tags_present_for_coalescing() {
        let m = rnn(&RnnConfig::default()).unwrap();
        let tagged = m
            .graph
            .node_ids()
            .filter(|&n| m.graph.node(n).tags.cell_position.is_some())
            .count();
        assert!(tagged > m.graph.num_nodes() / 3);
    }
}
