//! The non-partitioning training baselines of §7.1/§7.2: Ideal, SmallBatch,
//! Swapping and Operator Placement.

use std::collections::BTreeMap;

use tofu_graph::{Graph, NodeId, TensorId, TensorKind};

use crate::event::simulate;
use crate::machine::Machine;
use crate::memory::{device_memory, per_device_memory};
use crate::{Outcome, Perf};

/// A model source: builds the training graph for a given global batch size
/// (returns `None` when the builder cannot produce that batch).
pub type ModelBuilder<'a> = &'a dyn Fn(usize) -> Option<Graph>;

fn single_device_time(g: &Graph, machine: &Machine) -> f64 {
    let devices = vec![0usize; g.num_nodes()];
    simulate(g, &devices, machine, true).makespan
}

fn single_device_peak(g: &Graph, machine: &Machine) -> crate::memory::DeviceMemory {
    let _ = machine;
    let schedule: Vec<NodeId> = g.node_ids().collect();
    device_memory(g, &schedule, true, 1.0)
}

/// **Ideal** (§7.1): a hypothetical GPU with infinite memory; single-GPU
/// throughput at a saturating batch, multiplied by the GPU count.
pub fn ideal(build: ModelBuilder<'_>, batch: usize, machine: &Machine) -> Outcome {
    let Some(g) = build(batch) else {
        return Outcome::Oom { peak_gb: f64::NAN };
    };
    let t = single_device_time(&g, machine);
    Outcome::Ran(Perf {
        iter_seconds: t,
        throughput: machine.gpus as f64 * batch as f64 / t,
        batch,
        peak_gb: single_device_peak(&g, machine).peak_gb(),
        comm_fraction: 0.0,
    })
}

/// **SmallBatch** (§7.1): shrink the mini-batch until the model fits one
/// GPU; like Ideal, communication is ignored (an upper bound).
pub fn small_batch(
    build: ModelBuilder<'_>,
    candidates: &[usize],
    machine: &Machine,
) -> Outcome {
    let mut worst_peak = 0.0f64;
    for &batch in candidates {
        let Some(g) = build(batch) else { continue };
        let mem = single_device_peak(&g, machine);
        worst_peak = worst_peak.max(mem.peak_gb());
        if mem.fits(machine) {
            let t = single_device_time(&g, machine);
            return Outcome::Ran(Perf {
                iter_seconds: t,
                throughput: machine.gpus as f64 * batch as f64 / t,
                batch,
                peak_gb: mem.peak_gb(),
                comm_fraction: 0.0,
            });
        }
    }
    Outcome::Oom { peak_gb: worst_peak }
}

/// Steady-state LRU swap traffic (bytes in + out) for one iteration of the
/// schedule under a device-memory budget.
///
/// Policy per §7.1: least-recently-used eviction with prefetching, read-only
/// tensors are copied to the CPU once and dropped for free thereafter, and
/// buffers about to be used are not evicted.
pub fn lru_swap_traffic(g: &Graph, capacity: u64) -> u64 {
    #[derive(Clone)]
    struct Buf {
        bytes: u64,
        last: u64,
        dirty: bool,
    }
    let mut resident: BTreeMap<TensorId, Buf> = BTreeMap::new();
    let mut used: u64 = 0;
    let mut clock: u64 = 0;
    let mut traffic_in = 0u64;
    let mut traffic_out = 0u64;
    let mut counting = false;

    // Two passes: the first warms the cache (weights land resident), the
    // second measures the steady state.
    for pass in 0..2 {
        if pass == 1 {
            counting = true;
        }
        for id in g.node_ids() {
            let node = g.node(id);
            clock += 1;
            let mut touched: Vec<(TensorId, bool)> =
                node.inputs.iter().map(|&t| (t, false)).collect();
            touched.push((node.output, true));
            // Pin the tensors this node touches so they cannot self-evict.
            let pinned: Vec<TensorId> = touched.iter().map(|&(t, _)| t).collect();
            for (t, write) in touched {
                let bytes = g.tensor(t).shape.bytes();
                match resident.get_mut(&t) {
                    Some(buf) => {
                        buf.last = clock;
                        buf.dirty |= write;
                    }
                    None => {
                        // Swap in (a fresh write needs no inbound copy).
                        if !write && counting {
                            traffic_in += bytes;
                        }
                        // Evict LRU until it fits.
                        while used + bytes > capacity {
                            let victim = resident
                                .iter()
                                .filter(|(vt, _)| !pinned.contains(vt))
                                .min_by_key(|(_, b)| b.last)
                                .map(|(&vt, _)| vt);
                            let Some(victim) = victim else { break };
                            let b = resident.remove(&victim).expect("resident");
                            used -= b.bytes;
                            if b.dirty && counting {
                                traffic_out += b.bytes;
                            }
                        }
                        used += bytes;
                        resident.insert(
                            t,
                            Buf { bytes, last: clock, dirty: write },
                        );
                    }
                }
            }
        }
        // Between iterations, intermediates die; weights stay.
        let mut next: BTreeMap<TensorId, Buf> = BTreeMap::new();
        for (t, b) in resident {
            if g.tensor(t).kind != TensorKind::Intermediate {
                next.insert(t, b); // Weights persist across iterations.
            } else {
                used -= b.bytes;
            }
        }
        resident = next;
    }
    traffic_in + traffic_out
}

/// **Swapping** (§7.1): data parallelism with vDNN-style LRU swapping to the
/// host over the *shared* 10 GB/s CPU link; compute and transfers overlap
/// (prefetching), so iteration time is the max of the two, plus the
/// data-parallel gradient synchronization.
pub fn swap(
    build: ModelBuilder<'_>,
    candidates: &[usize],
    machine: &Machine,
) -> Outcome {
    let mut best: Option<Perf> = None;
    for &global_batch in candidates {
        let per_gpu = global_batch / machine.gpus;
        if per_gpu == 0 {
            continue;
        }
        let Some(g) = build(per_gpu) else { continue };
        let compute = single_device_time(&g, machine);
        let traffic = lru_swap_traffic(&g, machine.mem_capacity) as f64;
        let swap_time = traffic / machine.cpu_bw_per_gpu(machine.gpus);
        // Gradient all-reduce of replicated weights over the peer links.
        let weight_bytes: f64 = g
            .tensor_ids()
            .filter(|&t| g.tensor(t).kind == TensorKind::Weight)
            .map(|t| g.tensor(t).shape.bytes() as f64)
            .sum();
        let slowest = machine.levels.last().map(|&(_, bw)| bw).unwrap_or(8e9);
        let sync_time = 2.0 * weight_bytes * (machine.gpus as f64 - 1.0)
            / machine.gpus as f64
            / slowest;
        let iter = compute.max(swap_time) + sync_time;
        let perf = Perf {
            iter_seconds: iter,
            throughput: global_batch as f64 / iter,
            batch: global_batch,
            peak_gb: machine.capacity_gb(),
            comm_fraction: (iter - compute).max(0.0) / iter,
        };
        if best.as_ref().map(|b| perf.throughput > b.throughput).unwrap_or(true) {
            best = Some(perf);
        }
    }
    match best {
        Some(p) => Outcome::Ran(p),
        None => Outcome::Oom { peak_gb: f64::NAN },
    }
}

/// Device assignment for **Operator Placement** (§7.1): layers round-robin
/// over the GPUs; untagged nodes follow their first producer.
pub fn placement_devices(g: &Graph, gpus: usize) -> Vec<usize> {
    let mut devices = vec![0usize; g.num_nodes()];
    let mut tensor_device: Vec<usize> = vec![0; g.num_tensors()];
    for id in g.node_ids() {
        let node = g.node(id);
        let dev = match node.tags.layer {
            Some(layer) => layer % gpus,
            None => node
                .inputs
                .iter()
                .filter_map(|&t| g.producer(t).map(|p| devices[p.0]))
                .next()
                .unwrap_or(0),
        };
        devices[id.0] = dev;
        tensor_device[node.output.0] = dev;
    }
    devices
}

/// **Operator Placement**: pipelined per-layer execution across GPUs. The
/// `in_place_aggregation` flag distinguishes the MXNet flavor (true) from
/// the TensorFlow flavor (false), whose missing in-place gradient
/// aggregation roughly halves throughput and inflates memory (§7.2,
/// Table 3).
pub fn op_placement(
    g: &Graph,
    batch: usize,
    machine: &Machine,
    in_place_aggregation: bool,
) -> Outcome {
    let devices = placement_devices(g, machine.gpus);
    let sim = simulate(g, &devices, machine, false);
    let free = simulate(g, &devices, machine, true);
    let mems = per_device_memory(&g.clone(), &devices, machine.gpus, true, 1.0);
    let mut peak = mems.iter().map(|m| m.peak_bytes).max().unwrap_or(0) as f64;
    let mut iter = sim.makespan;
    if !in_place_aggregation {
        // Every gradient aggregation materializes fresh buffers and an
        // extra pass instead of accumulating in place.
        let mut extra_bytes = 0u64;
        let mut extra_time = 0.0;
        for id in g.node_ids() {
            let node = g.node(id);
            if node.op == "add_n" || node.name.starts_with("grad_acc") {
                let b = g.tensor(node.output).shape.bytes();
                extra_bytes += b * node.inputs.len() as u64;
                extra_time +=
                    3.0 * (b * node.inputs.len() as u64) as f64 / machine.mem_bandwidth;
            }
        }
        // The aggregation buffers concentrate on the device holding the most
        // gradients; charge the average per device.
        peak += extra_bytes as f64 / machine.gpus as f64;
        iter += extra_time;
    }
    if peak > machine.mem_capacity as f64 {
        return Outcome::Oom { peak_gb: peak / 1e9 };
    }
    Outcome::Ran(Perf {
        iter_seconds: iter,
        throughput: batch as f64 / iter,
        batch,
        peak_gb: peak / 1e9,
        comm_fraction: sim.comm_overhead_fraction(free.makespan),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_graph::{Attrs, NodeTags};
    use tofu_tensor::Shape;

    fn toy(batch: usize) -> Option<Graph> {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![batch, 64]));
        let w = g.add_weight("w", Shape::new(vec![64, 64]));
        let labels = g.add_input("labels", Shape::new(vec![batch]));
        let y = g.add_op("matmul", "fc", &[x, w], Attrs::new()).ok()?;
        let loss = g.add_op("softmax_ce", "loss", &[y, labels], Attrs::new()).ok()?;
        tofu_graph::autodiff::backward(&mut g, loss, &[w]).ok()?;
        Some(g)
    }

    #[test]
    fn ideal_scales_by_gpu_count() {
        let m = Machine::p2_8xlarge();
        let Outcome::Ran(p) = ideal(&toy, 64, &m) else { panic!("ideal ran") };
        assert_eq!(p.batch, 64);
        assert!(p.throughput > 0.0);
    }

    #[test]
    fn small_batch_picks_first_fitting() {
        let m = Machine::p2_8xlarge();
        let Outcome::Ran(p) = small_batch(&toy, &[128, 64, 32], &m) else {
            panic!("toy model fits easily")
        };
        assert_eq!(p.batch, 128);
    }

    #[test]
    fn small_batch_oom_when_nothing_fits() {
        let mut m = Machine::p2_8xlarge();
        m.mem_capacity = 1024; // 1 KiB GPU.
        let out = small_batch(&toy, &[8, 4], &m);
        assert!(matches!(out, Outcome::Oom { .. }));
    }

    #[test]
    fn lru_traffic_zero_when_fitting() {
        let g = toy(16).unwrap();
        assert_eq!(lru_swap_traffic(&g, 1 << 30), 0);
        // A starving budget forces traffic.
        let tight = lru_swap_traffic(&g, 24 * 1024);
        assert!(tight > 0, "traffic {tight}");
    }

    #[test]
    fn swap_runs_and_reports() {
        let m = Machine::p2_8xlarge();
        let Outcome::Ran(p) = swap(&toy, &[64], &m) else { panic!("swap runs") };
        assert_eq!(p.batch, 64);
        assert!(p.throughput > 0.0);
    }

    #[test]
    fn placement_round_robins_layers() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![4, 4]));
        let mut t = x;
        for i in 0..6 {
            t = g
                .add_op_tagged(
                    "relu",
                    &format!("r{i}"),
                    &[t],
                    Attrs::new(),
                    NodeTags { layer: Some(i), ..NodeTags::default() },
                )
                .unwrap();
        }
        let devices = placement_devices(&g, 4);
        assert_eq!(devices, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn tf_flavor_is_slower_and_bigger() {
        let m = Machine::p2_8xlarge();
        let g = toy(512).unwrap();
        let Outcome::Ran(mx) = op_placement(&g, 512, &m, true) else { panic!() };
        let Outcome::Ran(tf) = op_placement(&g, 512, &m, false) else { panic!() };
        assert!(tf.iter_seconds >= mx.iter_seconds);
        assert!(tf.peak_gb >= mx.peak_gb);
    }
}
