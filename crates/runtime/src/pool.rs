//! Per-worker buffer pool seeded from the static memory planner.
//!
//! The pool replays a [`BufferPlan`]'s slot actions against real backing
//! allocations: every planner slot becomes one `Vec<u8>` arena that is
//! allocated (or grown) exactly when the plan says so. Its high-water mark is
//! therefore the *measured* transient footprint of the worker, which the
//! tests hold against `tofu-sim`'s independent `per_device_memory`
//! prediction.
//!
//! An optional byte **budget** models a device memory cap: any `apply` that
//! finds (or leaves) the pool above the budget fails with a typed over-budget
//! pool error. The fault injector clamps the budget below the current
//! occupancy to force this path deterministically.
//!
//! # Transport slab
//!
//! The second half of this module is the zero-copy transport allocator: a
//! [`PieceSlab`] hands out plain `Vec<f32>` buffers for extracted tensor
//! pieces and seals them into reference-counted [`PieceRef`]s, which travel
//! over the channels by `Arc` clone instead of by payload copy. Once every
//! reference to a sealed piece is dropped (the receiver consumed it and the
//! channel released it), the backing buffer returns to the slab's freelist —
//! so a steady-state run recycles a bounded set of buffers instead of
//! allocating one per message.

use std::sync::Arc;

use tofu_graph::{BufferPlan, SlotAction};
use tofu_tensor::Shape;

use crate::error::RuntimeError;
use crate::Result;

/// A reference-counted tensor piece: the payload of one cross-worker
/// message. Cloning bumps a refcount — no payload bytes move — and dropping
/// the last reference makes the buffer reclaimable by the [`PieceSlab`] that
/// sealed it.
#[derive(Debug, Clone)]
pub struct PieceRef {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl PieceRef {
    /// Wraps an owned buffer without slab tracking (used for payloads that
    /// must diverge from the sealed original, e.g. an injected corruption).
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> PieceRef {
        debug_assert_eq!(shape.volume(), data.len(), "piece buffer does not match its shape");
        PieceRef { shape, data: Arc::new(data) }
    }

    /// The piece's block shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The payload.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Payload size in bytes.
    pub fn bytes(&self) -> u64 {
        self.shape.bytes()
    }
}

/// Recycling allocator for message payloads (see the module docs).
///
/// `alloc` pops a spare buffer off the freelist (or allocates a fresh one),
/// `seal` wraps the filled buffer into a shared [`PieceRef`] and keeps a
/// tracking reference; once `outstanding` sealed pieces exceed the
/// configured high-water mark, the next `seal` sweeps the tracking list and
/// returns every fully-released buffer to the freelist. Aliasing is
/// impossible by construction: a buffer is only ever reused after
/// `Arc::try_unwrap` proves this slab held the *last* reference.
#[derive(Debug)]
pub struct PieceSlab {
    free: Vec<Vec<f32>>,
    outstanding: Vec<Arc<Vec<f32>>>,
    high_water: usize,
    allocs: u64,
    reuses: u64,
    reclaimed: u64,
}

impl Default for PieceSlab {
    fn default() -> Self {
        PieceSlab::new(32)
    }
}

impl PieceSlab {
    /// A slab that sweeps for reclaimable buffers whenever more than
    /// `high_water` sealed pieces are outstanding.
    pub fn new(high_water: usize) -> PieceSlab {
        PieceSlab {
            free: Vec::new(),
            outstanding: Vec::new(),
            high_water: high_water.max(1),
            allocs: 0,
            reuses: 0,
            reclaimed: 0,
        }
    }

    /// An empty buffer with capacity for `len` elements — recycled off the
    /// freelist when possible, freshly allocated otherwise.
    pub fn alloc(&mut self, len: usize) -> Vec<f32> {
        match self.free.pop() {
            Some(mut buf) => {
                self.reuses += 1;
                buf.clear();
                buf.reserve(len);
                buf
            }
            None => {
                self.allocs += 1;
                Vec::with_capacity(len)
            }
        }
    }

    /// Seals a filled buffer into a shared [`PieceRef`], keeping a tracking
    /// reference so the buffer can be reclaimed once all receivers drop it.
    pub fn seal(&mut self, shape: Shape, data: Vec<f32>) -> PieceRef {
        debug_assert_eq!(shape.volume(), data.len(), "piece buffer does not match its shape");
        if self.outstanding.len() >= self.high_water {
            self.reclaim();
        }
        let data = Arc::new(data);
        self.outstanding.push(Arc::clone(&data));
        PieceRef { shape, data }
    }

    /// Sweeps the tracking list: every buffer whose last reference is the
    /// slab's own returns to the freelist.
    pub fn reclaim(&mut self) {
        let mut still = Vec::with_capacity(self.outstanding.len());
        for a in self.outstanding.drain(..) {
            match Arc::try_unwrap(a) {
                Ok(buf) => {
                    self.reclaimed += 1;
                    self.free.push(buf);
                }
                Err(a) => still.push(a),
            }
        }
        self.outstanding = still;
    }

    /// Sealed pieces whose buffers have not been reclaimed yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Buffers waiting on the freelist.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Fresh heap allocations performed.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Allocations served off the freelist.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Buffers returned to the freelist over the slab's lifetime.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }
}

/// Real backing storage for one worker's transient tensors.
#[derive(Debug, Default)]
pub struct BufferPool {
    worker: usize,
    slots: Vec<Vec<u8>>,
    current: u64,
    peak: u64,
    budget: Option<u64>,
}

impl BufferPool {
    /// An empty pool owned by `worker`; arenas appear as the plan's actions
    /// are applied.
    pub fn new(worker: usize) -> BufferPool {
        BufferPool { worker, ..BufferPool::default() }
    }

    /// Caps resident arena bytes; `None` removes the cap.
    pub fn set_budget(&mut self, bytes: Option<u64>) {
        self.budget = bytes;
    }

    /// The configured byte cap, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn err(&self, detail: String) -> RuntimeError {
        RuntimeError::Pool { worker: self.worker, detail }
    }

    fn check_budget(&self) -> Result<()> {
        if let Some(b) = self.budget {
            if self.current > b {
                return Err(self.err(format!(
                    "over budget: {} B resident exceeds the {} B cap",
                    self.current, b
                )));
            }
        }
        Ok(())
    }

    /// Applies the placement action of one schedule position. `need` is the
    /// byte size of the node's output tensor.
    pub fn apply(&mut self, action: SlotAction, need: u64) -> Result<()> {
        self.check_budget()?;
        match action {
            SlotAction::InPlace { slot } => {
                let have = self.slot_len(slot)?;
                if have < need {
                    return Err(self.err(format!(
                        "in-place takeover of slot {slot} ({have} B) needs {need} B"
                    )));
                }
            }
            SlotAction::Reuse { slot, grown_by } => {
                let have = self.slot_len(slot)?;
                if grown_by > 0 {
                    self.slots[slot].resize((have + grown_by) as usize, 0);
                    self.current += grown_by;
                    self.peak = self.peak.max(self.current);
                }
                if self.slot_len(slot)? < need {
                    return Err(self.err(format!(
                        "slot {slot} holds {} B after growth but {need} B are needed",
                        self.slots[slot].len()
                    )));
                }
            }
            SlotAction::Alloc { slot } => {
                if slot != self.slots.len() {
                    return Err(self.err(format!(
                        "plan allocates slot {slot} but pool holds {}",
                        self.slots.len()
                    )));
                }
                self.slots.push(vec![0u8; need as usize]);
                self.current += need;
                self.peak = self.peak.max(self.current);
            }
        }
        self.check_budget()
    }

    fn slot_len(&self, slot: usize) -> Result<u64> {
        self.slots
            .get(slot)
            .map(|s| s.len() as u64)
            .ok_or_else(|| self.err(format!("plan references unallocated slot {slot}")))
    }

    /// High-water mark of resident arena bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Currently resident arena bytes.
    pub fn current_bytes(&self) -> u64 {
        self.current
    }

    /// Number of physical arenas.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Checks the fully-applied pool against its seeding plan: same arenas,
    /// same sizes, same peak.
    pub fn verify_against(&self, plan: &BufferPlan) -> Result<()> {
        if self.slot_count() != plan.slot_bytes.len()
            || self
                .slots
                .iter()
                .zip(&plan.slot_bytes)
                .any(|(s, &b)| s.len() as u64 != b)
        {
            return Err(self.err("pool arenas diverged from the plan".into()));
        }
        if self.peak != plan.mem.peak_transient_bytes {
            return Err(self.err(format!(
                "pool peak {} B but the plan predicted {} B",
                self.peak, plan.mem.peak_transient_bytes
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_alloc_reuse_grow() {
        let mut p = BufferPool::new(0);
        p.apply(SlotAction::Alloc { slot: 0 }, 100).unwrap();
        p.apply(SlotAction::Alloc { slot: 1 }, 50).unwrap();
        p.apply(SlotAction::InPlace { slot: 0 }, 100).unwrap();
        p.apply(SlotAction::Reuse { slot: 1, grown_by: 30 }, 80).unwrap();
        assert_eq!(p.peak_bytes(), 180);
        assert_eq!(p.current_bytes(), 180);
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn rejects_inconsistent_plans() {
        let mut p = BufferPool::new(0);
        assert!(p.apply(SlotAction::InPlace { slot: 0 }, 1).is_err());
        assert!(p.apply(SlotAction::Alloc { slot: 3 }, 1).is_err());
        p.apply(SlotAction::Alloc { slot: 0 }, 10).unwrap();
        assert!(p.apply(SlotAction::InPlace { slot: 0 }, 11).is_err());
    }

    #[test]
    fn slab_recycles_only_fully_released_buffers() {
        let mut s = PieceSlab::new(2);
        let shape = Shape::new(vec![4]);
        let mut buf = s.alloc(4);
        buf.extend_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let a = s.seal(shape.clone(), buf);
        let mut buf = s.alloc(4);
        buf.extend_from_slice(&[5.0, 6.0, 7.0, 8.0]);
        let b = s.seal(shape.clone(), buf);
        assert_eq!(s.allocs(), 2);
        assert_eq!(s.outstanding(), 2);
        // Both pieces are live: sealing a third sweeps but reclaims nothing.
        drop(b);
        let mut buf = s.alloc(4);
        buf.extend_from_slice(&[9.0, 10.0, 11.0, 12.0]);
        let c = s.seal(shape.clone(), buf);
        assert_eq!(s.reclaimed(), 1, "only the dropped piece's buffer returns");
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 4.0], "live piece untouched by the sweep");
        drop(a);
        drop(c);
        s.reclaim();
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.free_buffers(), 3);
        // The next alloc reuses instead of allocating.
        let reused = s.alloc(4);
        assert!(reused.is_empty() && reused.capacity() >= 4);
        assert_eq!(s.reuses(), 1);
    }

    #[test]
    fn piece_ref_clones_share_one_payload() {
        let mut s = PieceSlab::new(8);
        let mut buf = s.alloc(2);
        buf.extend_from_slice(&[3.5, -1.0]);
        let p = s.seal(Shape::new(vec![2]), buf);
        let q = p.clone();
        assert_eq!(p.data().as_ptr(), q.data().as_ptr(), "clone must not copy the payload");
        assert_eq!(q.bytes(), 8);
        drop(p);
        drop(q);
        s.reclaim();
        assert_eq!(s.free_buffers(), 1);
    }

    #[test]
    fn budget_trips_typed_over_budget_error() {
        let mut p = BufferPool::new(7);
        p.set_budget(Some(120));
        p.apply(SlotAction::Alloc { slot: 0 }, 100).unwrap();
        let err = p.apply(SlotAction::Alloc { slot: 1 }, 50).unwrap_err();
        match err {
            RuntimeError::Pool { worker, detail } => {
                assert_eq!(worker, 7);
                assert!(detail.contains("over budget"), "got: {detail}");
            }
            other => panic!("expected Pool error, got {other}"),
        }
        // Clamping below current occupancy fails the very next apply, even a
        // growth-free one — the fault injector relies on this.
        let mut q = BufferPool::new(1);
        q.apply(SlotAction::Alloc { slot: 0 }, 100).unwrap();
        q.set_budget(Some(99));
        assert!(q.apply(SlotAction::InPlace { slot: 0 }, 100).is_err());
    }
}
