//! Bidirectional elastic recovery: survive permanent device loss by
//! re-partitioning onto the survivors, and grow back onto rejoining devices
//! at a checkpoint barrier — resharding progress across every width change.
//!
//! The recovery ladder (DESIGN.md "Elastic recovery"):
//!
//! 1. **Transient retry.** Each worker count gets `max_attempts` runs,
//!    resuming from the latest consistent checkpoint with capped,
//!    deterministically jittered backoff between them — the plain
//!    [`run_with_recovery`](crate::run_with_recovery) behaviour.
//! 2. **Elastic shrink.** When a width exhausts its attempts, the worker the
//!    last failure blames is classified as *permanently lost*: its physical
//!    device leaves the topology, the partition search re-runs for the
//!    survivor count through [`partition_cached`] (warm [`SearchCaches`]
//!    make the replan a cache lookup, not a cold search), the last
//!    consistent checkpoint is reassembled into a plan-independent
//!    [`FullSnapshot`] and resharded onto the new plan, and execution
//!    resumes at the same original-graph barrier on the shrunk worker set.
//! 3. **Elastic grow.** When the [`ChurnPlan`] announces a (re)joining
//!    device, the run *yields*: every worker stops cleanly right after
//!    recording the next checkpoint barrier at or past the join's
//!    `at_ckpt` plus the policy's `grow_hysteresis`. The pause barrier is
//!    consistent by construction, so it is harvested into the carried
//!    snapshot, the device enters the fleet, and the search re-selects the
//!    widest feasible worker count ≤ the new capacity — resuming bit-exact
//!    at the grown width.
//! 4. **Capacity tracking with spares.** Not every device count is a
//!    feasible width (no tensor dimension may divide by it) and the policy
//!    may cap width; width selection steps down to the widest worker count
//!    the search can actually split — surplus devices idle as *spares* and
//!    are folded back in at the next transition.
//! 5. **Typed surrender.** When the policy forbids any feasible width the
//!    ladder ends with [`RuntimeError::Unrecoverable`] naming the whole
//!    width ladder, every lost device and the terminal cause — never a
//!    hang.
//!
//! Fault worker indices name **physical** devices: active workers keep
//! their physical identity across transitions (`devices[logical] =
//! physical`), so a permanent fault follows its device through shrinks,
//! spares and rejoins, while faults on survivors keep firing at any width.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tofu_core::{
    generate, partition_cached, CoreError, GenOptions, PartitionOptions, PartitionPlan,
    SearchCaches, ShardedGraph,
};
use tofu_graph::{plan_buffers, Graph, TensorId};
use tofu_obs::{Collector, Track};
use tofu_tensor::Tensor;

use crate::checkpoint::{
    checkpoint_cuts, AttemptRecord, BackoffSchedule, BarrierUnit, CheckpointStore,
    RecoveryOptions, ResumePoint,
};
use crate::error::{RunFailure, RuntimeError};
use crate::fault::{ChurnEvent, FaultState};
use crate::reshard::{assemble_snapshot, scatter_snapshot, FullSnapshot};
use crate::{run_attempt, Attempt, Fault, Result, RunOptions, RunOutput};

/// Bounds on how far elastic recovery may reshape the worker set, in both
/// directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticPolicy {
    /// Fewest active workers the run may degrade to (inclusive; values
    /// below 1 mean 1).
    pub min_workers: usize,
    /// Most active workers a grow may reach (inclusive). Joining devices
    /// beyond the cap are kept as spares.
    pub max_workers: usize,
    /// Maximum number of shrink events (device removals).
    pub max_shrink_steps: usize,
    /// Maximum number of grow events (width increases). Joins past the cap
    /// are absorbed as spares.
    pub max_grow_steps: usize,
    /// Extra checkpoint barriers to wait past a join's `at_ckpt` before
    /// pausing the run to grow. Growing costs a yield + reshard + resume;
    /// hysteresis keeps a flapping device from buying that cost the moment
    /// it reappears, and — because the effective barrier is
    /// `clamp(at_ckpt + hysteresis, next-barrier ..= last-barrier)` —
    /// the grow point stays deterministic for a given plan.
    pub grow_hysteresis: usize,
    /// Per-device byte budget every candidate plan's static footprint
    /// (buffer-plan peak + persistent shards, the bytes the pools will
    /// actually hold) is checked against; over-budget widths are stepped
    /// past like infeasible ones.
    pub per_device_budget: Option<u64>,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        ElasticPolicy {
            min_workers: 1,
            max_workers: usize::MAX,
            max_shrink_steps: usize::MAX,
            max_grow_steps: usize::MAX,
            grow_hysteresis: 0,
            per_device_budget: None,
        }
    }
}

/// What kind of fleet transition a ladder step was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// A device was lost and the active width stepped down.
    Shrink,
    /// A device joined and the active width stepped up.
    Grow,
    /// A device joined but the width could not increase (policy cap or no
    /// wider feasible width): it idles as a spare.
    SpareJoin,
    /// A scripted leave hit a device that was not active (a spare): the
    /// fleet shrank but the running width did not change.
    SpareLoss,
}

/// One fleet transition of an elastic run, with its recovery-latency
/// breakdown: detect (failure observation, shrinks only) → replan
/// (partition search at the new width, warm or cold) → reshard (snapshot
/// scatter onto the new plan) → resume (first attempt at the new width).
#[derive(Debug, Clone)]
pub struct ElasticTransition {
    /// What happened.
    pub kind: TransitionKind,
    /// Physical device that left or joined.
    pub device: usize,
    /// Active width before the transition.
    pub from_width: usize,
    /// Active width after it.
    pub to_width: usize,
    /// Checkpoint barrier the transition happened at: the yield barrier for
    /// grows, the carried snapshot's barrier for shrinks (`None` = the new
    /// width started from scratch).
    pub at_ckpt: Option<usize>,
    /// Slowest peer abort-detection latency of the triggering failure
    /// (shrinks only; grows are voluntary).
    pub detection: Option<Duration>,
    /// Partition-search time for the new width (includes stepped-past
    /// infeasible probes, excludes program lowering — lowering costs the
    /// same warm or cold).
    pub replan: Option<Duration>,
    /// Whether the new width's plan came out of the warm plan cache.
    pub replan_warm: bool,
    /// Snapshot reshard time onto the new plan.
    pub reshard: Option<Duration>,
    /// Bytes of full-tensor snapshot moved by that reshard.
    pub reshard_bytes: u64,
    /// Wall-clock of the first attempt at the new width.
    pub resume_wall: Option<Duration>,
}

/// What an elastic run hands back: the final output plus the whole ladder's
/// history. `output.values` is keyed by `sharded`'s tensor ids — gather
/// originals with [`ShardedGraph::gather`] (or
/// [`gather_shards`](crate::gather_shards)) on the returned `sharded`.
#[derive(Debug)]
pub struct ElasticReport {
    /// The successful run's output, on the final worker set.
    pub output: RunOutput,
    /// The sharded graph of the final (successful) plan.
    pub sharded: ShardedGraph,
    /// The final partition plan.
    pub plan: PartitionPlan,
    /// Active physical devices of the final width, in logical-worker order.
    pub devices: Vec<usize>,
    /// Fleet members idling as spares at the end (in the fleet but not
    /// active: policy caps or no feasible width used them).
    pub spares: Vec<usize>,
    /// Physical devices classified as permanently lost, in loss order.
    pub lost: Vec<usize>,
    /// Physical devices that (re)joined the fleet, in join order.
    pub joined: Vec<usize>,
    /// Worker counts attempted, ladder order (full width first).
    pub widths: Vec<usize>,
    /// Total attempts consumed across all widths.
    pub attempts: usize,
    /// The failure of every aborted attempt, in order.
    pub failures: Vec<RunFailure>,
    /// Per attempt: the checkpoint it resumed from (`None` = from scratch).
    pub resumed_from: Vec<Option<usize>>,
    /// Per attempt: worker set, resume point and latency breakdown.
    pub history: Vec<AttemptRecord>,
    /// Every fleet transition (shrink/grow/spare) with its detect → replan
    /// → reshard → resume latency split.
    pub transitions: Vec<ElasticTransition>,
    /// The plan-independent snapshot the final width resumed from, if any —
    /// feed it to [`resume_from_snapshot`](crate::resume_from_snapshot) at
    /// the final width to reproduce the output bit for bit.
    pub snapshot: Option<FullSnapshot>,
}

/// Worst per-device static memory footprint of a plan: buffer-plan peak
/// plus persistent shard bytes, per worker — the same accounting the
/// runtime's pools replay.
fn worst_device_footprint(sharded: &ShardedGraph, buffer_reuse: bool) -> u64 {
    (0..sharded.workers)
        .map(|w| {
            let schedule = sharded.worker_schedule(w);
            plan_buffers(&sharded.graph, &schedule, buffer_reuse).mem.total_bytes()
        })
        .max()
        .unwrap_or(0)
}

/// A committed width choice: the widest feasible worker count ≤ capacity.
struct Selection {
    width: usize,
    plan: PartitionPlan,
    sharded: ShardedGraph,
    /// Search time, stepped-past probes included.
    replan: Duration,
    /// The selected width's plan was a warm plan-cache hit.
    warm: bool,
}

/// Why no width could be selected.
enum SelectErr {
    /// A real error (generator failure, search blowup) — propagate as-is.
    Hard(RuntimeError),
    /// Every width in the permitted range is infeasible (no strategy) or
    /// over budget; carries the terminal cause.
    Infeasible(RuntimeError),
}

/// Selects the widest feasible worker count ≤ `cap` under `policy`: worker
/// counts the search cannot split ([`CoreError::NoStrategy`]) or whose
/// static footprint exceeds the per-device budget are stepped past (width
/// tracks capacity; surplus devices idle as spares). With no policy the
/// width is exact — `cap` or error.
fn select_width(
    g: &Graph,
    base: &PartitionOptions,
    caches: &mut SearchCaches,
    obs: Option<&Collector>,
    policy: Option<&ElasticPolicy>,
    cap: usize,
    buffer_reuse: bool,
) -> std::result::Result<Selection, SelectErr> {
    let (floor, ceil, budget) = match policy {
        Some(p) => (p.min_workers.max(1), cap.min(p.max_workers.max(1)), p.per_device_budget),
        None => (cap, cap, None),
    };
    let t0 = Instant::now();
    let obs_t0 = obs.map(|c| c.now_us()).unwrap_or(0.0);
    let mut terminal: Option<RuntimeError> = None;
    let mut w = ceil;
    while w >= floor && w >= 1 {
        // A replan is *warm* when the request memo answers for the selected
        // width — a finished plan served without any search. Step-plan hits
        // below the request level don't count: a first-ever search at this
        // width shares step fingerprints with other widths and still pays
        // real search work.
        let hits_before = caches.stats().request_hits;
        match partition_cached(g, &PartitionOptions { workers: w, ..*base }, caches, obs) {
            Ok(plan) => {
                let warm = caches.stats().request_hits > hits_before;
                // Replan time is the *search* (including every stepped-past
                // infeasible probe) — program lowering below costs the same
                // warm or cold and would drown the cache signal.
                let replan = t0.elapsed();
                let sharded = match generate(g, &plan, &GenOptions::default()) {
                    Ok(s) => s,
                    Err(e) => return Err(SelectErr::Hard(e.into())),
                };
                if let Some(b) = budget {
                    let worst = worst_device_footprint(&sharded, buffer_reuse);
                    if worst > b {
                        if let Some(c) = obs {
                            c.instant(
                                Track::control(),
                                "elastic",
                                &format!("width {w} over budget ({worst} > {b} bytes/device)"),
                            );
                        }
                        terminal = Some(RuntimeError::Pool {
                            worker: 0,
                            detail: format!(
                                "plan for {w} workers needs {worst} bytes/device, budget is {b}"
                            ),
                        });
                        if w == 1 {
                            break;
                        }
                        w -= 1;
                        continue;
                    }
                }
                if let Some(c) = obs {
                    c.complete(
                        Track::search(),
                        "search",
                        &format!("elastic replan ({w} workers)"),
                        obs_t0,
                        c.now_us(),
                    );
                }
                return Ok(Selection { width: w, plan, sharded, replan, warm });
            }
            Err(e @ (CoreError::NoStrategy { .. } | CoreError::BadWorkerCount(_)))
                if policy.is_some() =>
            {
                if let Some(c) = obs {
                    c.instant(Track::control(), "elastic", &format!("width {w} infeasible"));
                }
                terminal = Some(e.into());
                if w == 1 {
                    break;
                }
                w -= 1;
            }
            Err(e) => return Err(SelectErr::Hard(e.into())),
        }
    }
    Err(SelectErr::Infeasible(terminal.unwrap_or_else(|| {
        RuntimeError::InvalidOptions(format!(
            "elastic policy permits no worker count (capacity {cap})"
        ))
    })))
}

/// Inserts `d` into sorted `v` (active devices are always the lowest-id
/// fleet members, so logical-worker order stays deterministic).
fn insert_sorted(v: &mut Vec<usize>, d: usize) {
    let i = v.partition_point(|&x| x < d);
    v.insert(i, d);
}

/// [`run_with_recovery`](crate::run_with_recovery) extended with the elastic
/// ladder: takes the **original** graph and full-tensor feeds (partitioning
/// and scattering are re-done per width), retries transient failures at the
/// current width, shrinks past permanent losses, grows onto devices a
/// [`ChurnPlan`](crate::ChurnPlan) rejoins, and reshards checkpoints across
/// plans so progress survives every width change. See the module docs for
/// the ladder.
pub fn run_with_elastic_recovery(
    g: &Graph,
    feeds: &[(TensorId, Tensor)],
    part_opts: &PartitionOptions,
    opts: &RunOptions,
    recovery: &RecoveryOptions,
    caches: &mut SearchCaches,
) -> Result<ElasticReport> {
    let invalid = |m: String| Err(RuntimeError::InvalidOptions(m));
    if recovery.max_attempts == 0 {
        return invalid("max_attempts must be at least 1".into());
    }
    if part_opts.workers == 0 {
        return invalid("cannot run on zero workers".into());
    }
    if opts.recv_timeout.is_zero() {
        return invalid("recv_timeout must be positive (a zero timeout stalls instantly)".into());
    }
    if opts.abort_poll.is_zero() {
        return invalid("abort_poll must be positive".into());
    }
    if let Some(cp) = opts.checkpoint {
        if cp.every == 0 {
            return invalid("checkpoint interval must be positive".into());
        }
        if cp.unit != BarrierUnit::OriginalSteps {
            return invalid(
                "elastic recovery reshards checkpoints across plans; use the plan-independent \
                 barriers of CheckpointPolicy::every_original"
                    .into(),
            );
        }
    }
    // Fault plans address the *initial* fleet's physical ids.
    for f in &opts.faults.faults {
        let k = part_opts.workers;
        match f.fault {
            Fault::Kill { worker, .. }
            | Fault::Panic { worker, .. }
            | Fault::PoolOverBudget { worker, .. } => {
                if worker >= k {
                    return invalid(format!("fault targets worker {worker} of {k}"));
                }
            }
            Fault::Message { src, dst, .. } => {
                if src >= k || dst >= k {
                    return invalid(format!("message fault targets link {src} -> {dst} of {k}"));
                }
                if src == dst {
                    return invalid(format!("message fault targets self-link {src} -> {dst}"));
                }
                if opts.integrity != crate::IntegrityLevel::Full {
                    return invalid(
                        "message faults need IntegrityLevel::Full; lower levels skip the \
                         checks that detect tampering"
                            .into(),
                    );
                }
            }
        }
    }
    if let Err(m) = opts.churn.validate(part_opts.workers) {
        return invalid(m);
    }
    if !opts.churn.is_empty() && recovery.elastic.is_none() {
        return invalid(
            "churn plans reshape the fleet; set RecoveryOptions::elastic to an ElasticPolicy"
                .into(),
        );
    }
    if opts.churn.has_joins() && opts.checkpoint.is_none() {
        return invalid(
            "churn joins grow the run at checkpoint barriers; set a \
             CheckpointPolicy::every_original cadence"
                .into(),
        );
    }

    let obs = opts.collector.as_ref();
    let faults = FaultState::with_churn(&opts.faults, &opts.churn);
    let mut backoff = BackoffSchedule::from_recovery(recovery);
    let policy = recovery.elastic;

    // The fleet: every present physical device, sorted. The first `width`
    // are active; the rest idle as spares.
    let mut available: Vec<usize> = (0..part_opts.workers).collect();
    let mut lost: Vec<usize> = Vec::new();
    let mut joined: Vec<usize> = Vec::new();
    let mut widths: Vec<usize> = Vec::new();
    let mut failures: Vec<RunFailure> = Vec::new();
    let mut resumed_from: Vec<Option<usize>> = Vec::new();
    let mut history: Vec<AttemptRecord> = Vec::new();
    let mut transitions: Vec<ElasticTransition> = Vec::new();
    let mut attempts = 0usize;
    let mut carried: Option<FullSnapshot> = None;
    let mut shrinks = 0usize;
    let mut grows = 0usize;
    // Index into `transitions` of the width change whose reshard/resume
    // latencies are still to be measured.
    let mut open_transition: Option<usize> = None;

    let mut selection = match select_width(
        g,
        part_opts,
        caches,
        obs,
        policy.as_ref(),
        part_opts.workers,
        opts.buffer_reuse,
    ) {
        Ok(s) => s,
        Err(SelectErr::Hard(e)) => return Err(e),
        Err(SelectErr::Infeasible(cause)) => {
            return Err(match policy {
                // With an elastic mandate an unrunnable start is a typed
                // surrender; without one, surface the raw error.
                Some(_) => RuntimeError::Unrecoverable { lost, widths, cause: Box::new(cause) },
                None => cause,
            });
        }
    };

    'ladder: loop {
        let Selection { width, plan, sharded, replan, warm: _ } = selection;
        widths.push(width);
        let devices: Vec<usize> = available[..width].to_vec();
        if let Some(c) = obs {
            c.counter(Track::control(), "elastic/surviving_workers", c.now_us(), width as f64);
            c.counter(
                Track::control(),
                "elastic/spare_devices",
                c.now_us(),
                (available.len() - width) as f64,
            );
            if shrinks + grows > 0 {
                c.add_total("elastic/replans", 1.0);
            }
        }

        // Scatter the original feeds into this plan's shard layout.
        let mut shard_feeds: Vec<(TensorId, Tensor)> = Vec::new();
        for (t, v) in feeds {
            shard_feeds.extend(sharded.scatter(*t, v)?);
        }

        // Reshard the carried snapshot (if any) onto this plan once; every
        // attempt at this width can resume from it.
        let mut reshard_time: Option<Duration> = None;
        let mut reshard_bytes = 0u64;
        let carried_point: Option<ResumePoint> = match &carried {
            Some(snap) => {
                let t0 = Instant::now();
                let obs_t0 = obs.map(|c| c.now_us()).unwrap_or(0.0);
                let point = scatter_snapshot(snap, &sharded)?;
                reshard_time = Some(t0.elapsed());
                reshard_bytes = snap.bytes();
                if let Some(c) = obs {
                    c.complete(
                        Track::control(),
                        "elastic",
                        &format!("reshard checkpoint {} → {width} workers", snap.ckpt),
                        obs_t0,
                        c.now_us(),
                    );
                    c.add_total("elastic/reshard_bytes", snap.bytes() as f64);
                }
                Some(point)
            }
            None => None,
        };
        if let Some(i) = open_transition {
            transitions[i].reshard = reshard_time;
            transitions[i].reshard_bytes = reshard_bytes;
        }

        // Resolve armed churn events that cannot fire mid-run: a leave of a
        // non-active device happens immediately (no worker runs on it), and
        // a join the policy caps is absorbed as a spare without a pause.
        loop {
            match faults.armed_event() {
                Some(ChurnEvent::Leave { device, .. }) if !devices.contains(&device) => {
                    faults.advance_churn();
                    if let Some(i) = available.iter().position(|&d| d == device) {
                        available.remove(i);
                        lost.push(device);
                        transitions.push(ElasticTransition {
                            kind: TransitionKind::SpareLoss,
                            device,
                            from_width: width,
                            to_width: width,
                            at_ckpt: None,
                            detection: None,
                            replan: None,
                            replan_warm: false,
                            reshard: None,
                            reshard_bytes: 0,
                            resume_wall: None,
                        });
                        if let Some(c) = obs {
                            c.instant(
                                Track::control(),
                                "churn",
                                &format!("spare device {device} lost (width stays {width})"),
                            );
                        }
                    }
                }
                Some(ChurnEvent::Join { device, .. })
                    if policy.is_none_or(|p| {
                        width >= p.max_workers.max(1) || grows >= p.max_grow_steps
                    }) =>
                {
                    faults.advance_churn();
                    insert_sorted(&mut available, device);
                    joined.push(device);
                    transitions.push(ElasticTransition {
                        kind: TransitionKind::SpareJoin,
                        device,
                        from_width: width,
                        to_width: width,
                        at_ckpt: None,
                        detection: None,
                        replan: None,
                        replan_warm: false,
                        reshard: None,
                        reshard_bytes: 0,
                        resume_wall: None,
                    });
                    if let Some(c) = obs {
                        c.instant(
                            Track::control(),
                            "churn",
                            &format!("device {device} joined as spare (policy caps width)"),
                        );
                        c.add_total("elastic/joins", 1.0);
                    }
                }
                _ => break,
            }
        }
        // A join that may trigger a grow pause during this width's attempts.
        let grow_pending = faults.pending_join();

        let cuts: Vec<Vec<usize>> = match opts.checkpoint {
            Some(cp) => checkpoint_cuts(&sharded, cp),
            None => Vec::new(),
        };
        // Fresh store per width: snapshots are keyed by this plan's tensor
        // ids. Progress crosses widths only through the carried snapshot.
        let store = Mutex::new(CheckpointStore::default());

        let mut width_failure: Option<RunFailure> = None;
        for attempt in 1..=recovery.max_attempts {
            attempts += 1;
            let resume: Option<ResumePoint> = {
                let s = store.lock();
                match s.latest_consistent(width, cuts.len()) {
                    // This width's own checkpoints are never older than the
                    // carried snapshot (attempts resume at or past its
                    // barrier), so prefer them.
                    Some(ck) => Some(s.resume_point(ck, width, &cuts)),
                    None => carried_point.clone(),
                }
            };
            resumed_from.push(resume.as_ref().map(|p| p.ckpt));
            // Where to pause for a pending join: the first barrier strictly
            // after the resume point that honors `at_ckpt` plus hysteresis,
            // clamped into the plan's barrier range. `None` when the resume
            // point is already past the last barrier — the attempt then
            // runs to completion and the join stays pending.
            let yield_at: Option<usize> = grow_pending.and_then(|(_, at)| {
                let hyst = policy.map(|p| p.grow_hysteresis).unwrap_or(0);
                let lo = resume.as_ref().map(|p| p.ckpt + 1).unwrap_or(1);
                (lo <= cuts.len()).then(|| at.saturating_add(hyst).clamp(lo, cuts.len()))
            });
            if let Some(c) = obs {
                let what = match &resume {
                    Some(p) => format!(
                        "attempt {attempt} @ {width} workers: resume from checkpoint {}",
                        p.ckpt
                    ),
                    None => format!("attempt {attempt} @ {width} workers: from scratch"),
                };
                c.instant(Track::control(), "recovery", &what);
            }
            let t0 = Instant::now();
            let outcome = run_attempt(
                &sharded,
                &shard_feeds,
                opts,
                &faults,
                &store,
                resume.as_ref(),
                &devices,
                yield_at,
            );
            let wall = t0.elapsed();
            if attempt == 1 {
                if let Some(i) = open_transition.take() {
                    transitions[i].resume_wall = Some(wall);
                }
            }
            let mut record = AttemptRecord {
                width,
                devices: devices.clone(),
                resumed_from: resume.as_ref().map(|p| p.ckpt),
                replan: (attempt == 1).then_some(replan),
                reshard: if attempt == 1 { reshard_time } else { None },
                reshard_bytes: if attempt == 1 { reshard_bytes } else { 0 },
                detection: None,
                wall,
                ok: false,
                yielded: None,
            };
            match outcome {
                Ok(Attempt::Done(output)) => {
                    record.ok = true;
                    history.push(record);
                    let snapshot = carried.take();
                    let spares: Vec<usize> =
                        available.iter().copied().filter(|d| !devices.contains(d)).collect();
                    return Ok(ElasticReport {
                        output,
                        sharded,
                        plan,
                        devices,
                        spares,
                        lost,
                        joined,
                        widths,
                        attempts,
                        failures,
                        resumed_from,
                        history,
                        transitions,
                        snapshot,
                    });
                }
                Ok(Attempt::Yielded { ckpt }) => {
                    record.yielded = Some(ckpt);
                    history.push(record);
                    // The pause barrier is consistent by construction
                    // (every worker recorded it before stopping): harvest
                    // it as the carried snapshot and let the device in.
                    let cp = opts.checkpoint.expect("yield requires a checkpoint policy");
                    let point = {
                        let s = store.lock();
                        s.resume_point(ckpt, width, &cuts)
                    };
                    carried = Some(assemble_snapshot(&sharded, point.ckpt, &point.values, cp.every)?);
                    let (dev, _) = grow_pending.expect("yield only happens for a pending join");
                    insert_sorted(&mut available, dev);
                    joined.push(dev);
                    faults.advance_churn();
                    // Re-select over the enlarged capacity. The current
                    // width stays feasible, so selection cannot regress
                    // below it — but it may not *exceed* it either, in
                    // which case the device idles as a spare.
                    let sel = match select_width(
                        g,
                        part_opts,
                        caches,
                        obs,
                        policy.as_ref(),
                        available.len(),
                        opts.buffer_reuse,
                    ) {
                        Ok(s) => s,
                        Err(SelectErr::Hard(e)) => return Err(e),
                        Err(SelectErr::Infeasible(cause)) => {
                            return Err(RuntimeError::Unrecoverable {
                                lost,
                                widths,
                                cause: Box::new(cause),
                            });
                        }
                    };
                    let kind = if sel.width > width {
                        grows += 1;
                        TransitionKind::Grow
                    } else {
                        TransitionKind::SpareJoin
                    };
                    if let Some(c) = obs {
                        let what = match kind {
                            TransitionKind::Grow => format!(
                                "device {dev} rejoined: grow {width} → {} at checkpoint {ckpt}",
                                sel.width
                            ),
                            _ => format!(
                                "device {dev} rejoined as spare (no wider feasible width)"
                            ),
                        };
                        c.instant(Track::control(), "churn", &what);
                        c.add_total("elastic/joins", 1.0);
                        if kind == TransitionKind::Grow {
                            c.add_total("elastic/grows", 1.0);
                        }
                    }
                    transitions.push(ElasticTransition {
                        kind,
                        device: dev,
                        from_width: width,
                        to_width: sel.width,
                        at_ckpt: Some(ckpt),
                        detection: None,
                        replan: Some(sel.replan),
                        replan_warm: sel.warm,
                        reshard: None,
                        reshard_bytes: 0,
                        resume_wall: None,
                    });
                    open_transition = Some(transitions.len() - 1);
                    selection = sel;
                    continue 'ladder;
                }
                Err(RuntimeError::Failed(f)) => {
                    record.detection = f.max_detection();
                    history.push(record);
                    if attempt < recovery.max_attempts {
                        failures.push(*f);
                        let delay = backoff.next_delay();
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                    } else {
                        width_failure = Some(*f);
                    }
                }
                // Configuration errors are not retryable.
                Err(e) => return Err(e),
            }
        }

        // This width is out of attempts: classify the blamed worker's
        // physical device as permanently lost and consult the policy.
        let f = width_failure.expect("exhausted width recorded a failure");
        let victim = devices[f.worker];
        if let Some(c) = obs {
            c.instant(Track::control(), "elastic", &format!("device {victim} lost (permanent)"));
        }
        let Some(pol) = policy else {
            // No elastic mandate: behave like plain recovery and surface the
            // final failure.
            return Err(RuntimeError::Failed(Box::new(f)));
        };
        lost.push(victim);
        shrinks += 1;
        // A scripted leave of this device has done its job: retire it so
        // the next churn event arms.
        if matches!(faults.armed_event(),
            Some(ChurnEvent::Leave { device, .. }) if device == victim)
        {
            faults.advance_churn();
        }
        if shrinks > pol.max_shrink_steps {
            return Err(RuntimeError::Unrecoverable {
                lost,
                widths,
                cause: Box::new(RuntimeError::Failed(Box::new(f))),
            });
        }

        // Harvest this width's best consistent checkpoint as the carried
        // plan-independent snapshot before the store (keyed by this plan's
        // tensor ids) is dropped.
        if let Some(cp) = opts.checkpoint {
            let s = store.lock();
            if let Some(ck) = s.latest_consistent(width, cuts.len()) {
                let point = s.resume_point(ck, width, &cuts);
                let snap = assemble_snapshot(&sharded, point.ckpt, &point.values, cp.every)?;
                // Attempts only ever resume at or past the carried barrier,
                // so a fresh consistent checkpoint is never older.
                if carried.as_ref().is_none_or(|c0| snap.ckpt >= c0.ckpt) {
                    carried = Some(snap);
                }
            }
        }
        let i = available.iter().position(|&d| d == victim).expect("victim is in the fleet");
        available.remove(i);
        let detection = f.max_detection();
        selection = match select_width(
            g,
            part_opts,
            caches,
            obs,
            Some(&pol),
            available.len(),
            opts.buffer_reuse,
        ) {
            Ok(s) => s,
            Err(SelectErr::Hard(e)) => return Err(e),
            Err(SelectErr::Infeasible(term)) => {
                // A budget breach is more informative than the triggering
                // failure; a bare floor/feasibility breach is not.
                let cause = if matches!(term, RuntimeError::Pool { .. }) {
                    term
                } else {
                    RuntimeError::Failed(Box::new(f))
                };
                return Err(RuntimeError::Unrecoverable {
                    lost,
                    widths,
                    cause: Box::new(cause),
                });
            }
        };
        transitions.push(ElasticTransition {
            kind: TransitionKind::Shrink,
            device: victim,
            from_width: width,
            to_width: selection.width,
            at_ckpt: carried.as_ref().map(|s| s.ckpt),
            detection,
            replan: Some(selection.replan),
            replan_warm: selection.warm,
            reshard: None,
            reshard_bytes: 0,
            resume_wall: None,
        });
        open_transition = Some(transitions.len() - 1);
        failures.push(f);
    }
}
