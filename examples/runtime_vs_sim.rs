//! Runtime vs. simulator: execute a Tofu-partitioned MLP on real worker
//! threads, then print the measured `RunTrace` summary next to the
//! discrete-event simulator's prediction for the same sharded graph.
//!
//! Run with: `cargo run --release --example runtime_vs_sim`

use tofu::core::{generate, partition, GenOptions, PartitionOptions};
use tofu::graph::{Graph, TensorId, TensorKind};
use tofu::models::{mlp, MlpConfig};
use tofu::runtime::run;
use tofu::sim::{compare_trace, Machine};
use tofu::tensor::Tensor;

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.1)
        };
        out.push((t, v));
    }
    out
}

fn main() {
    let workers = 4;
    let model = mlp(&MlpConfig {
        batch: 64,
        dims: vec![256, 256],
        classes: 64,
        with_updates: true,
    })
    .expect("model builds");

    let plan = partition(&model.graph, &PartitionOptions { workers, ..Default::default() })
        .expect("partition succeeds");
    let sharded =
        generate(&model.graph, &plan, &GenOptions::default()).expect("generation succeeds");
    println!(
        "partitioned {}-node graph into {} nodes across {workers} workers (exact: {})",
        model.graph.num_nodes(),
        sharded.graph.num_nodes(),
        sharded.exact
    );

    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(&model.graph) {
        shard_feeds.extend(sharded.scatter(t, &v).expect("scatter"));
    }
    let out = run(&sharded, &shard_feeds).expect("runtime run");

    println!("\n=== measured (tofu-runtime, {workers} threads) ===");
    print!("{}", out.trace.summary());

    println!("\n=== predicted vs. measured (tofu-sim::compare_trace) ===");
    let report = compare_trace(&sharded, &Machine::p2_8xlarge(), &out.trace, true);
    print!("{}", report.summary());
    println!(
        "\ncomm bytes {} | every device within 10% of per_device_memory: {}",
        if report.comm_bytes_match() { "match exactly" } else { "DIVERGED" },
        report.memory_within(0.10)
    );
}
