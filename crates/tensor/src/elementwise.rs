//! Element-wise kernels: unary maps, binary zips, and scalar broadcasts.
//!
//! These correspond to the 77 element-wise MXNet operators the paper counts
//! (§4.1); every one partitions trivially along any dimension, which is why
//! the coarsening pass (tofu-core) coalesces runs of them.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data().iter().copied().map(f).collect();
        Tensor::from_vec(self.shape().clone(), data).expect("same volume")
    }

    /// Combines two same-shape tensors element-wise with `f`.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().dims().to_vec(),
                rhs: other.shape().dims().to_vec(),
            });
        }
        let data = self.data().iter().zip(other.data()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(self.shape().clone(), data)
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise division.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a / b)
    }

    /// Element-wise maximum of two tensors.
    pub fn maximum(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, f32::max)
    }

    /// Element-wise minimum of two tensors.
    pub fn minimum(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, f32::min)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|a| a + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Element-wise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|a| -a)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.map(|a| a * a)
    }

    /// Element-wise reciprocal.
    pub fn recip(&self) -> Tensor {
        self.map(|a| 1.0 / a)
    }

    /// Element-wise logistic sigmoid `1 / (1 + e^-x)`.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|a| 1.0 / (1.0 + (-a).exp()))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Element-wise rectified linear unit `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|a| a.max(0.0))
    }

    /// Gradient mask of ReLU: 1 where `x > 0`, else 0.
    pub fn relu_grad_mask(&self) -> Tensor {
        self.map(|a| if a > 0.0 { 1.0 } else { 0.0 })
    }

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::new(vec![n]), v).unwrap()
    }

    #[test]
    fn binary_ops() {
        let a = t(vec![1., 2., 3.]);
        let b = t(vec![4., 5., 6.]);
        assert_eq!(a.add(&b).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4., 10., 18.]);
        assert_eq!(b.div(&a).unwrap().data(), &[4., 2.5, 2.]);
        assert_eq!(a.maximum(&b).unwrap().data(), &[4., 5., 6.]);
        assert_eq!(a.minimum(&b).unwrap().data(), &[1., 2., 3.]);
    }

    #[test]
    fn binary_shape_mismatch() {
        let a = t(vec![1., 2.]);
        let b = t(vec![1., 2., 3.]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn unary_ops() {
        let a = t(vec![-1., 0., 4.]);
        assert_eq!(a.neg().data(), &[1., 0., -4.]);
        assert_eq!(a.abs().data(), &[1., 0., 4.]);
        assert_eq!(a.relu().data(), &[0., 0., 4.]);
        assert_eq!(a.relu_grad_mask().data(), &[0., 0., 1.]);
        assert_eq!(a.square().data(), &[1., 0., 16.]);
        assert!((a.sqrt().data()[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn scalar_ops() {
        let a = t(vec![1., 2.]);
        assert_eq!(a.add_scalar(1.0).data(), &[2., 3.]);
        assert_eq!(a.mul_scalar(2.0).data(), &[2., 4.]);
        assert_eq!(a.sum_all(), 3.0);
    }

    #[test]
    fn sigmoid_and_tanh_bounds() {
        let a = t(vec![-100., 0., 100.]);
        let s = a.sigmoid();
        assert!(s.data()[0] < 1e-6);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[2] > 1.0 - 1e-6);
        let h = a.tanh();
        assert!((h.data()[0] + 1.0).abs() < 1e-6);
        assert!((h.data()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exp_ln_roundtrip() {
        let a = t(vec![0.5, 1.0, 2.0]);
        assert!(a.exp().ln().allclose(&a, 1e-6));
        assert!(a.recip().recip().allclose(&a, 1e-6));
    }
}
