//! Ergonomic builder DSL for TDL descriptions.
//!
//! Mirrors the paper's Python decorator syntax in Rust. The conv1d example
//! from Fig. 3:
//!
//! ```
//! use tofu_tdl::{DescBuilder, Reducer};
//!
//! let mut b = DescBuilder::new("conv1d", &[3, 3]);
//! let (bb, co, x) = (b.output_var("b"), b.output_var("co"), b.output_var("x"));
//! let (ci, dx) = (b.reduce_var("ci"), b.reduce_var("dx"));
//! let body = b.input(0, &[bb.at(), ci.at(), x.at() + dx.at()])
//!     * b.input(1, &[ci.at(), co.at(), dx.at()]);
//! let conv1d = b.build_reduce(Reducer::Sum, body).unwrap();
//! assert_eq!(conv1d.name(), "conv1d");
//! ```
//!
//! And batched Cholesky, whose body is an opaque function:
//!
//! ```
//! use tofu_tdl::{DescBuilder, Exp};
//! use tofu_tdl::builder::Idx;
//!
//! let mut b = DescBuilder::new("batch_cholesky", &[3]);
//! let (bb, i, j) = (b.output_var("b"), b.output_var("i"), b.output_var("j"));
//! let slice = b.input(0, &[bb.at(), Idx::full(), Idx::full()]);
//! let body = b.opaque("cholesky", vec![slice], &[i, j]);
//! let desc = b.build(body).unwrap();
//! assert!(desc.has_opaque());
//! assert_eq!(desc.unsplittable_vars(), vec![1, 2]);
//! ```

use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::expr::{
    AffineIndex, BinaryOp, IndexExpr, Reducer, ScalarExpr, TdlDesc, UnaryOp, VarId, VarInfo,
    VarKind,
};
use crate::Result;

/// A declared index variable handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var {
    pub(crate) id: VarId,
}

impl Var {
    /// The variable's id within the description.
    pub fn id(self) -> VarId {
        self.id
    }

    /// Uses the variable as an index coordinate.
    pub fn at(self) -> Idx {
        Idx(IndexExpr::Affine(AffineIndex::var(self.id)))
    }

    /// Uses the variable's value in a scalar expression (e.g. ramps).
    pub fn value(self) -> Exp {
        Exp(ScalarExpr::VarValue(self.id))
    }
}

/// An index coordinate: an affine expression over variables, or a full slice.
///
/// Arithmetic is provided by operator overloads.
///
/// # Panics
///
/// Arithmetic on a full slice (`Idx::full()`) panics: `:` cannot take part
/// in affine expressions, matching TDL's grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct Idx(pub(crate) IndexExpr);

impl Idx {
    /// The full slice `:`.
    pub fn full() -> Idx {
        Idx(IndexExpr::Full)
    }

    /// A constant coordinate.
    pub fn constant(c: i64) -> Idx {
        Idx(IndexExpr::Affine(AffineIndex::constant(c as f64)))
    }

    /// Divides the coordinate by an integer factor — models the *region*
    /// semantics of strided backward operators.
    // Deliberately an inherent method, not `std::ops::Div`: the TDL grammar
    // only allows division by integer literals, not by another `Idx`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, k: i64) -> Idx {
        Idx(IndexExpr::Affine(self.affine().scale(1.0 / k as f64)))
    }

    fn affine(self) -> AffineIndex {
        match self.0 {
            IndexExpr::Affine(a) => a,
            IndexExpr::Full => panic!("arithmetic on a full slice `:` is not allowed in TDL"),
        }
    }
}

impl Add<Idx> for Idx {
    type Output = Idx;
    fn add(self, rhs: Idx) -> Idx {
        Idx(IndexExpr::Affine(self.affine().add(&rhs.affine())))
    }
}

impl Sub<Idx> for Idx {
    type Output = Idx;
    fn sub(self, rhs: Idx) -> Idx {
        Idx(IndexExpr::Affine(self.affine().add(&rhs.affine().scale(-1.0))))
    }
}

impl Add<i64> for Idx {
    type Output = Idx;
    fn add(self, rhs: i64) -> Idx {
        Idx(IndexExpr::Affine(self.affine().offset(rhs as f64)))
    }
}

impl Sub<i64> for Idx {
    type Output = Idx;
    fn sub(self, rhs: i64) -> Idx {
        Idx(IndexExpr::Affine(self.affine().offset(-rhs as f64)))
    }
}

impl Mul<i64> for Idx {
    type Output = Idx;
    fn mul(self, rhs: i64) -> Idx {
        Idx(IndexExpr::Affine(self.affine().scale(rhs as f64)))
    }
}

/// A scalar TDL expression under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Exp(pub(crate) ScalarExpr);

impl Exp {
    /// A floating constant.
    pub fn constant(c: f64) -> Exp {
        Exp(ScalarExpr::Const(c))
    }

    fn unary(self, op: UnaryOp) -> Exp {
        Exp(ScalarExpr::Unary { op, arg: Box::new(self.0) })
    }

    fn binary(self, op: BinaryOp, rhs: Exp) -> Exp {
        Exp(ScalarExpr::Binary { op, lhs: Box::new(self.0), rhs: Box::new(rhs.0) })
    }

    /// Element-wise exponential.
    pub fn exp(self) -> Exp {
        self.unary(UnaryOp::Exp)
    }

    /// Element-wise natural logarithm.
    pub fn log(self) -> Exp {
        self.unary(UnaryOp::Log)
    }

    /// Element-wise square root.
    pub fn sqrt(self) -> Exp {
        self.unary(UnaryOp::Sqrt)
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(self) -> Exp {
        self.unary(UnaryOp::Tanh)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(self) -> Exp {
        self.unary(UnaryOp::Sigmoid)
    }

    /// Element-wise rectifier.
    pub fn relu(self) -> Exp {
        self.unary(UnaryOp::Relu)
    }

    /// Element-wise absolute value.
    pub fn abs(self) -> Exp {
        self.unary(UnaryOp::Abs)
    }

    /// Element-wise maximum.
    pub fn max(self, rhs: Exp) -> Exp {
        self.binary(BinaryOp::Max, rhs)
    }

    /// Element-wise minimum.
    pub fn min(self, rhs: Exp) -> Exp {
        self.binary(BinaryOp::Min, rhs)
    }

    /// Consumes the wrapper, yielding the AST node.
    pub fn into_expr(self) -> ScalarExpr {
        self.0
    }
}

impl Add for Exp {
    type Output = Exp;
    fn add(self, rhs: Exp) -> Exp {
        self.binary(BinaryOp::Add, rhs)
    }
}

impl Sub for Exp {
    type Output = Exp;
    fn sub(self, rhs: Exp) -> Exp {
        self.binary(BinaryOp::Sub, rhs)
    }
}

impl Mul for Exp {
    type Output = Exp;
    fn mul(self, rhs: Exp) -> Exp {
        self.binary(BinaryOp::Mul, rhs)
    }
}

impl Div for Exp {
    type Output = Exp;
    fn div(self, rhs: Exp) -> Exp {
        self.binary(BinaryOp::Div, rhs)
    }
}

impl Neg for Exp {
    type Output = Exp;
    fn neg(self) -> Exp {
        self.unary(UnaryOp::Neg)
    }
}

/// Incremental builder for a [`TdlDesc`].
#[derive(Debug, Clone)]
pub struct DescBuilder {
    name: String,
    input_ranks: Vec<usize>,
    vars: Vec<VarInfo>,
}

impl DescBuilder {
    /// Starts a description with the given operator name and input ranks.
    pub fn new(name: impl Into<String>, input_ranks: &[usize]) -> DescBuilder {
        DescBuilder { name: name.into(), input_ranks: input_ranks.to_vec(), vars: Vec::new() }
    }

    /// Declares the next output dimension's index variable.
    ///
    /// # Panics
    ///
    /// Panics when called after [`DescBuilder::reduce_var`]: output variables
    /// must be declared first so variable `i` names output dimension `i`.
    pub fn output_var(&mut self, name: impl Into<String>) -> Var {
        assert!(
            self.vars.iter().all(|v| v.kind == VarKind::Output),
            "output variables must be declared before reduce variables"
        );
        self.vars.push(VarInfo { name: name.into(), kind: VarKind::Output, extent_hint: None });
        Var { id: self.vars.len() - 1 }
    }

    /// Declares a reduction variable.
    pub fn reduce_var(&mut self, name: impl Into<String>) -> Var {
        self.vars.push(VarInfo { name: name.into(), kind: VarKind::Reduce, extent_hint: None });
        Var { id: self.vars.len() - 1 }
    }

    /// Declares a reduction variable with a statically known extent (e.g. a
    /// pooling window taken from operator attributes). Needed when the
    /// variable never appears alone in any access, so shape-based extent
    /// resolution cannot recover it.
    pub fn reduce_var_with_extent(&mut self, name: impl Into<String>, extent: u64) -> Var {
        self.vars.push(VarInfo {
            name: name.into(),
            kind: VarKind::Reduce,
            extent_hint: Some(extent),
        });
        Var { id: self.vars.len() - 1 }
    }

    /// Reads input tensor `input` at the given coordinates.
    pub fn input(&self, input: usize, indices: &[Idx]) -> Exp {
        Exp(ScalarExpr::Access {
            input,
            indices: indices.iter().map(|i| i.0.clone()).collect(),
        })
    }

    /// Wraps arguments in an opaque function whose result is indexed by
    /// `out_vars` (which therefore become unsplittable).
    pub fn opaque(&self, name: impl Into<String>, args: Vec<Exp>, out_vars: &[Var]) -> Exp {
        Exp(ScalarExpr::Opaque {
            name: name.into(),
            args: args.into_iter().map(|e| e.0).collect(),
            out_vars: out_vars.iter().map(|v| v.id).collect(),
        })
    }

    /// Finishes a reduction-free description.
    pub fn build(self, body: Exp) -> Result<TdlDesc> {
        TdlDesc::new(self.name, self.input_ranks, self.vars, None, body.0)
    }

    /// Finishes a description whose output reduces over the reduce variables.
    pub fn build_reduce(self, reducer: Reducer, body: Exp) -> Result<TdlDesc> {
        TdlDesc::new(self.name, self.input_ranks, self.vars, Some(reducer), body.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_matmul() {
        let mut b = DescBuilder::new("matmul", &[2, 2]);
        let (i, j) = (b.output_var("i"), b.output_var("j"));
        let k = b.reduce_var("k");
        let body = b.input(0, &[i.at(), k.at()]) * b.input(1, &[k.at(), j.at()]);
        let desc = b.build_reduce(Reducer::Sum, body).unwrap();
        assert_eq!(desc.output_rank(), 2);
        assert_eq!(desc.reduce_vars().collect::<Vec<_>>(), vec![2]);
        assert!(!desc.is_elementwise());
    }

    #[test]
    fn builds_elementwise_with_operators() {
        let mut b = DescBuilder::new("gate", &[2, 2]);
        let (i, j) = (b.output_var("i"), b.output_var("j"));
        let x = b.input(0, &[i.at(), j.at()]);
        let y = b.input(1, &[i.at(), j.at()]);
        let body = x.sigmoid() * y.tanh();
        let desc = b.build(body).unwrap();
        assert!(desc.is_elementwise());
    }

    #[test]
    fn index_arithmetic_builds_affine_terms() {
        let mut b = DescBuilder::new("strided", &[1]);
        let i = b.output_var("i");
        let e = b.input(0, &[i.at() * 2 + 1]);
        let desc = b.build(e).unwrap();
        let mut seen = None;
        desc.body().for_each_access(&mut |_, idx| {
            if let IndexExpr::Affine(a) = &idx[0] {
                seen = Some((a.coeff(0), a.constant));
            }
        });
        assert_eq!(seen, Some((2.0, 1.0)));
    }

    #[test]
    fn index_subtraction() {
        let mut b = DescBuilder::new("pad", &[1]);
        let i = b.output_var("i");
        let e = b.input(0, &[i.at() - 3]);
        let desc = b.build(e).unwrap();
        let mut c = None;
        desc.body().for_each_access(&mut |_, idx| {
            if let IndexExpr::Affine(a) = &idx[0] {
                c = Some(a.constant);
            }
        });
        assert_eq!(c, Some(-3.0));
    }

    #[test]
    #[should_panic(expected = "full slice")]
    fn arithmetic_on_full_slice_panics() {
        let _ = Idx::full() + 1;
    }

    #[test]
    #[should_panic(expected = "output variables must be declared before")]
    fn output_after_reduce_panics() {
        let mut b = DescBuilder::new("bad", &[1]);
        let _k = b.reduce_var("k");
        let _i = b.output_var("i");
    }

    #[test]
    fn scalar_expression_combinators() {
        let mut b = DescBuilder::new("mix", &[1]);
        let i = b.output_var("i");
        let x = b.input(0, &[i.at()]);
        let e = (-(x.clone().exp() + Exp::constant(1.0)).log()).max(x.min(Exp::constant(0.0)));
        // Just verify it builds into a valid description.
        assert!(b.build(e).is_ok());
    }

    #[test]
    fn var_value_usable_in_body() {
        let mut b = DescBuilder::new("ramp", &[]);
        let i = b.output_var("i");
        let desc = b.build(i.value()).unwrap();
        assert_eq!(desc.num_inputs(), 0);
    }
}
