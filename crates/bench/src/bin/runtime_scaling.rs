//! Runtime scaling sweep: shard-parallel throughput of `tofu-runtime` at
//! 1/2/4/8 workers for an MLP and a small WResNet, written to
//! `BENCH_runtime.json` so later changes have a perf trajectory to beat.
//!
//! The numbers measure the *runtime*, not the partitioner: the partition
//! search runs once per (model, workers) outside the timed region. Worker
//! threads only help when the host has cores to run them — the JSON records
//! `host_cpus` so a single-core container's flat curve is not mistaken for a
//! runtime regression.

use std::time::Instant;

use tofu_bench::{bench_report, feeds, write_report, Json};
use tofu_core::{generate, partition, GenOptions, PartitionOptions, ShardedGraph};
use tofu_graph::Graph;
use tofu_models::{mlp, wresnet, MlpConfig, WResNetConfig};
use tofu_runtime::run;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const WARMUP: usize = 1;
const ITERS: usize = 5;

struct Row {
    model: &'static str,
    workers: usize,
    seconds_per_iter: f64,
    samples_per_sec: f64,
    comm_bytes: u64,
    nodes: usize,
    exact: bool,
}

fn measure(model: &'static str, g: &Graph, batch: usize, workers: usize) -> Option<Row> {
    let plan = match partition(g, &PartitionOptions { workers, ..Default::default() }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{model} w={workers}: partition failed: {e}");
            return None;
        }
    };
    let sharded: ShardedGraph = match generate(g, &plan, &GenOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{model} w={workers}: generate failed: {e}");
            return None;
        }
    };
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(g) {
        shard_feeds.extend(sharded.scatter(t, &v).expect("scatter"));
    }
    let mut best = f64::INFINITY;
    let mut comm_bytes = 0;
    for i in 0..WARMUP + ITERS {
        let t0 = Instant::now();
        let out = run(&sharded, &shard_feeds).expect("runtime run");
        let dt = t0.elapsed().as_secs_f64();
        comm_bytes = out.trace.comm_bytes();
        if i >= WARMUP {
            best = best.min(dt);
        }
    }
    Some(Row {
        model,
        workers,
        seconds_per_iter: best,
        samples_per_sec: batch as f64 / best,
        comm_bytes,
        nodes: sharded.graph.num_nodes(),
        exact: sharded.exact,
    })
}

fn main() {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mlp_model = mlp(&MlpConfig { batch: 64, dims: vec![256, 256], classes: 64, with_updates: true })
        .expect("mlp builds");
    let wres_model = wresnet(&WResNetConfig {
        layers: 50,
        width: 1,
        batch: 8,
        image: 16,
        classes: 8,
        with_updates: true,
    })
    .expect("wresnet builds");

    let mut rows: Vec<Row> = Vec::new();
    for (name, model, batch) in [
        ("mlp-256x2 (batch 64)", &mlp_model, 64usize),
        ("wresnet-50-1 (batch 8)", &wres_model, 8),
    ] {
        println!("\n{name} — best of {ITERS} iterations after {WARMUP} warmup");
        println!(
            "{:<8} {:>12} {:>14} {:>12} {:>7} {:>6}",
            "workers", "s/iter", "samples/s", "comm bytes", "nodes", "exact"
        );
        println!("{}", "-".repeat(64));
        for workers in WORKERS {
            if let Some(r) = measure(name, &model.graph, batch, workers) {
                println!(
                    "{:<8} {:>12.6} {:>14.1} {:>12} {:>7} {:>6}",
                    r.workers, r.seconds_per_iter, r.samples_per_sec, r.comm_bytes, r.nodes, r.exact
                );
                rows.push(r);
            }
        }
    }

    let results = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("model", Json::from(r.model)),
                ("workers", Json::from(r.workers)),
                ("seconds_per_iter", Json::from(r.seconds_per_iter)),
                ("samples_per_sec", Json::from(r.samples_per_sec)),
                ("comm_bytes", Json::from(r.comm_bytes)),
                ("nodes", Json::from(r.nodes)),
                ("exact", Json::Bool(r.exact)),
            ])
        })
        .collect();
    let doc = bench_report(
        "runtime_scaling",
        vec![
            ("host_cpus", Json::from(cpus)),
            ("warmup", Json::from(WARMUP)),
            ("iters", Json::from(ITERS)),
        ],
        results,
    );
    write_report("BENCH_runtime.json", &doc);
    println!("({} rows, host_cpus={cpus})", rows.len());
}
