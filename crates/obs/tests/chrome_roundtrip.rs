//! Round-trip test for the Chrome-trace exporter: a trace emitted through
//! the `Collector`, serialized with `chrome_trace_json`, must parse back
//! with the zero-dependency JSON parser and reproduce event counts, span
//! nesting and per-device timestamp order.

use tofu_obs::chrome::chrome_trace_json;
use tofu_obs::json::{parse, Json};
use tofu_obs::{Collector, Track, PID_RUNTIME_BASE, PID_SIM_BASE};

/// Emits a small but representative trace: nested runtime spans on two
/// devices, a sim span, a search counter and a control instant.
fn sample_collector() -> Collector {
    let c = Collector::new();
    // Device 0: outer span enclosing an inner one (proper nesting), then a
    // later sibling — timestamps strictly ordered within the lane.
    c.complete(Track::runtime(0), "op", "fc0", 100.0, 400.0);
    c.complete(Track::runtime(0), "wait", "recv fc0[1]", 150.0, 250.0);
    c.complete(Track::runtime(0), "op", "fc1", 500.0, 700.0);
    // Device 1 runs the mirror shard.
    c.complete(Track::runtime(1), "op", "fc0", 110.0, 390.0);
    c.complete(Track::runtime(1), "op", "fc1", 480.0, 650.0);
    // Predicted lane for device 0, same span names as the measured lane.
    c.complete(Track::sim(0), "op", "fc0", 0.0, 300.0);
    c.complete(Track::sim(0), "op", "fc1", 300.0, 480.0);
    c.counter(Track::search(), "dp/frontier states", 10.0, 4.0);
    c.instant(Track::control(), "recovery", "attempt 0");
    c
}

fn events(doc: &Json) -> &[Json] {
    doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array")
}

fn pid_of(e: &Json) -> u32 {
    e.get("pid").and_then(Json::as_f64).expect("pid") as u32
}

#[test]
fn event_count_survives_round_trip() {
    let c = sample_collector();
    let emitted = c.len();
    let doc = parse(&chrome_trace_json(&c.events())).expect("exporter output parses");
    let evs = events(&doc);
    // 5 distinct pids (search, control, runtime 0/1, sim 0), each with two
    // metadata records (process_name + process_sort_index).
    let metadata = evs.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("M")).count();
    assert_eq!(metadata, 10);
    assert_eq!(evs.len(), emitted + metadata);
}

#[test]
fn nesting_is_preserved() {
    let c = sample_collector();
    let doc = parse(&chrome_trace_json(&c.events())).expect("parses");
    let dev0: Vec<&Json> = events(&doc)
        .iter()
        .filter(|e| {
            pid_of(e) == PID_RUNTIME_BASE && e.get("ph").and_then(Json::as_str) == Some("X")
        })
        .collect();
    assert_eq!(dev0.len(), 3);
    let span = |e: &Json| -> (f64, f64) {
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        (ts, ts + e.get("dur").and_then(Json::as_f64).unwrap())
    };
    let (outer_s, outer_e) = span(dev0[0]);
    let (inner_s, inner_e) = span(dev0[1]);
    assert!(outer_s <= inner_s && inner_e <= outer_e, "recv span must nest inside its op span");
    let (next_s, _) = span(dev0[2]);
    assert!(next_s >= outer_e, "sibling span must start after the previous one ends");
}

#[test]
fn timestamps_stay_monotone_per_device() {
    let c = sample_collector();
    let doc = parse(&chrome_trace_json(&c.events())).expect("parses");
    for pid in [PID_RUNTIME_BASE, PID_RUNTIME_BASE + 1, PID_SIM_BASE] {
        let ts: Vec<f64> = events(&doc)
            .iter()
            .filter(|e| {
                pid_of(e) == pid && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .map(|e| e.get("ts").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(!ts.is_empty(), "pid {pid} lost its spans");
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "pid {pid} timestamps out of order: {ts:?}"
        );
    }
}

#[test]
fn counters_and_instants_survive() {
    let c = sample_collector();
    let doc = parse(&chrome_trace_json(&c.events())).expect("parses");
    let evs = events(&doc);
    let counter = evs
        .iter()
        .find(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
        .expect("counter event");
    assert_eq!(counter.get("name").and_then(Json::as_str), Some("dp/frontier states"));
    assert_eq!(
        counter.get("args").and_then(|a| a.get("value")).and_then(Json::as_f64),
        Some(4.0)
    );
    let instant = evs
        .iter()
        .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
        .expect("instant event");
    assert_eq!(instant.get("name").and_then(Json::as_str), Some("attempt 0"));
    assert_eq!(instant.get("s").and_then(Json::as_str), Some("t"));
}
