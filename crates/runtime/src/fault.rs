//! Deterministic fault injection.
//!
//! A [`FaultPlan`] in [`RunOptions`](crate::RunOptions) names exactly which
//! failures to inject and where: kill or panic a worker at a chosen schedule
//! position, tamper with the n-th message on a chosen link (drop, duplicate,
//! corrupt, delay), or force a buffer-pool over-budget event. Injection
//! points are schedule positions and per-link message indices — both
//! deterministic for a given sharded graph — so every run of a plan exercises
//! the identical failure path.
//!
//! Each fault fires **once** per [`FaultState`], and `run_with_recovery`
//! shares one state across retries: injected faults model *transient*
//! failures, so the retry observes a healthy world and can validate the
//! checkpoint-restart path.
//!
//! [`FaultRng`] is a small deterministic generator (SplitMix64) for deriving
//! fault sites from a seed — used by the `fault_matrix` bench and tests to
//! sweep schedule positions without hand-picking them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What to do to one targeted cross-worker message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFault {
    /// Swallow the message (the wire loses it).
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Flip a payload bit after the checksum is computed.
    Corrupt,
    /// Hold the message back for the given time before sending.
    Delay(Duration),
}

/// One injected failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Worker `worker` dies silently just before executing schedule
    /// position `pos` (clamped to its last position).
    Kill {
        /// Victim worker.
        worker: usize,
        /// Local schedule position at which it dies.
        pos: usize,
    },
    /// Worker `worker` panics just before executing schedule position `pos`.
    Panic {
        /// Victim worker.
        worker: usize,
        /// Local schedule position at which it panics.
        pos: usize,
    },
    /// Tamper with the `index`-th message (0-based, in send order, startup
    /// sends included) that `src` pushes to `dst`.
    Message {
        /// Sending worker.
        src: usize,
        /// Receiving worker.
        dst: usize,
        /// 0-based message index on the `src → dst` link.
        index: u64,
        /// What to do to it.
        action: MessageFault,
    },
    /// Clamp worker `worker`'s buffer-pool budget below its current
    /// occupancy just before schedule position `pos`, forcing the next
    /// `apply` to fail with an over-budget pool error.
    PoolOverBudget {
        /// Victim worker.
        worker: usize,
        /// Local schedule position at which the budget clamps.
        pos: usize,
    },
}

/// The full set of faults to inject into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults to inject; order is irrelevant.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no injection).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn single(fault: Fault) -> FaultPlan {
        FaultPlan { faults: vec![fault] }
    }

    /// Adds a fault, builder style.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// True when nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Deterministic SplitMix64 stream for deriving fault sites from a seed.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A stream seeded by `seed`; equal seeds yield equal streams.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed ^ 0x9e3779b97f4a7c15 }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (`n` must be positive).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "FaultRng::below(0)");
        self.next_u64() % n
    }
}

/// A step fault that fired at a worker's schedule position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepFault {
    Kill,
    Panic,
    PoolOverBudget,
}

/// Shared fire-once state of a plan. One `FaultState` spans every retry of a
/// `run_with_recovery` call, so each fault is observed by exactly one
/// attempt.
#[derive(Debug)]
pub(crate) struct FaultState {
    faults: Vec<(Fault, AtomicBool)>,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> FaultState {
        FaultState {
            faults: plan.faults.iter().map(|f| (f.clone(), AtomicBool::new(false))).collect(),
        }
    }

    /// Marks fault `i` fired; true if this call fired it first.
    fn fire(&self, i: usize) -> bool {
        !self.faults[i].1.swap(true, Ordering::AcqRel)
    }

    /// The step faults (kill/panic/pool) firing for `worker` just before its
    /// local schedule position `pos`. `last` is the worker's final position,
    /// used to clamp out-of-range injection sites so "late" faults on short
    /// schedules still fire.
    pub(crate) fn step_faults(&self, worker: usize, pos: usize, last: usize) -> Vec<StepFault> {
        let mut out = Vec::new();
        for (i, (f, _)) in self.faults.iter().enumerate() {
            let (w, p, kind) = match f {
                Fault::Kill { worker, pos } => (*worker, *pos, StepFault::Kill),
                Fault::Panic { worker, pos } => (*worker, *pos, StepFault::Panic),
                Fault::PoolOverBudget { worker, pos } => {
                    (*worker, *pos, StepFault::PoolOverBudget)
                }
                Fault::Message { .. } => continue,
            };
            if w == worker && p.min(last) == pos && self.fire(i) {
                out.push(kind);
            }
        }
        out
    }

    /// The message fault (if any) targeting the `index`-th message that
    /// `src` pushes to `dst`.
    pub(crate) fn message_action(
        &self,
        src: usize,
        dst: usize,
        index: u64,
    ) -> Option<MessageFault> {
        for (i, (f, _)) in self.faults.iter().enumerate() {
            if let Fault::Message { src: s, dst: d, index: n, action } = f {
                if *s == src && *d == dst && *n == index && self.fire(i) {
                    return Some(*action);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_faults_fire_once() {
        let st = FaultState::new(&FaultPlan::single(Fault::Kill { worker: 1, pos: 3 }));
        assert!(st.step_faults(0, 3, 10).is_empty(), "wrong worker");
        assert!(st.step_faults(1, 2, 10).is_empty(), "wrong position");
        assert_eq!(st.step_faults(1, 3, 10), vec![StepFault::Kill]);
        assert!(st.step_faults(1, 3, 10).is_empty(), "faults are one-shot");
    }

    #[test]
    fn out_of_range_position_clamps_to_last() {
        let st = FaultState::new(&FaultPlan::single(Fault::Panic { worker: 0, pos: 99 }));
        assert!(st.step_faults(0, 4, 5).is_empty());
        assert_eq!(st.step_faults(0, 5, 5), vec![StepFault::Panic]);
    }

    #[test]
    fn message_action_matches_link_and_index() {
        let st = FaultState::new(&FaultPlan::single(Fault::Message {
            src: 0,
            dst: 2,
            index: 1,
            action: MessageFault::Drop,
        }));
        assert_eq!(st.message_action(0, 2, 0), None);
        assert_eq!(st.message_action(1, 2, 1), None);
        assert_eq!(st.message_action(0, 2, 1), Some(MessageFault::Drop));
        assert_eq!(st.message_action(0, 2, 1), None, "message faults are one-shot");
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(FaultRng::new(1).below(10) < 10);
    }
}
