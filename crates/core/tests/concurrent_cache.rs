//! Concurrency stress for the shared [`SearchCaches`].
//!
//! Eight threads hammer one cache with a rotating mix of models and worker
//! counts. The contract under test is the one the plan service depends on:
//!
//! 1. no deadlock or panic under contention (the test finishing is the
//!    assertion; `scripts/check.sh` runs it under a timeout);
//! 2. every concurrently produced plan is **bit-identical** to the plan a
//!    cold single-threaded search produces for the same request;
//! 3. single-flight exactness at both levels: the request memo records
//!    **exactly one miss per unique request** (every duplicate — concurrent
//!    or later — joins the leader's flight or hits its memoized outcome),
//!    and within those leaders the step-plan cache records exactly one miss
//!    per unique step fingerprint.

use std::sync::Arc;

use tofu_core::recursive::{partition_cached, partition_shared, PartitionOptions, PartitionPlan};
use tofu_core::SearchCaches;
use tofu_graph::Graph;
use tofu_models::{mlp, MlpConfig};

const THREADS: usize = 8;
const ROUNDS: usize = 3;

/// The plan's identity, excluding wall-clock `search_time`. `Debug` on the
/// step plans and tiling prints exact values (f64 via shortest round-trip),
/// so equal strings ⇔ bit-identical plans.
fn canonical(plan: &PartitionPlan) -> String {
    format!("workers={} steps={:?} tiling={:?}", plan.workers, plan.steps, plan.tiling)
}

fn request_mix() -> Vec<(Graph, PartitionOptions)> {
    // All widths are multiples of 24 so both the 8-worker (2·2·2) and the
    // 6-worker (3·2) step sequences stay divisible.
    let model_a = mlp(&MlpConfig {
        batch: 24,
        dims: vec![48, 24],
        classes: 24,
        with_updates: true,
    })
    .expect("model a");
    let model_b = mlp(&MlpConfig {
        batch: 48,
        dims: vec![72, 48],
        classes: 24,
        with_updates: false,
    })
    .expect("model b");
    let mut mix = Vec::new();
    for g in [&model_a.graph, &model_b.graph] {
        for workers in [4usize, 6, 8] {
            mix.push((g.clone(), PartitionOptions { workers, ..Default::default() }));
        }
    }
    mix
}

#[test]
fn shared_cache_is_deadlock_free_exact_and_bit_identical() {
    let mix = request_mix();

    // Cold single-threaded baseline over one fresh cache: records the
    // expected plans and the per-pass lookup/miss tallies.
    let mut baseline_caches = SearchCaches::new();
    let mut expected: Vec<String> = Vec::new();
    for (g, opts) in &mix {
        let plan = partition_cached(g, opts, &mut baseline_caches, None).expect("baseline");
        expected.push(canonical(&plan));
    }
    let baseline = baseline_caches.stats();
    assert!(baseline.plan_misses > 0, "baseline must exercise the plan cache");
    assert_eq!(
        baseline.request_misses,
        mix.len() as u64,
        "each unique request misses the request memo once"
    );

    // Concurrent pass: 8 threads × 3 rounds over rotated request orders.
    let shared = Arc::new(SearchCaches::new());
    let mix = Arc::new(mix);
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = Arc::clone(&shared);
            let mix = Arc::clone(&mix);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    for i in 0..mix.len() {
                        // Rotate so threads collide on *different* requests
                        // at any instant, maximizing interleavings.
                        let idx = (i + t + round) % mix.len();
                        let (g, opts) = &mix[idx];
                        let plan =
                            partition_shared(g, opts, &shared, None).expect("concurrent search");
                        assert_eq!(
                            canonical(&plan),
                            expected[idx],
                            "thread {t} round {round} produced a different plan for request {idx}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    // Single-flight exactness: one request-memo miss per unique request,
    // ever — every duplicate call (concurrent or later) is a hit — and,
    // inside those leaders, one step-plan miss per unique fingerprint.
    let stats = shared.stats();
    let total_requests = (THREADS * ROUNDS * mix.len()) as u64;
    assert_eq!(
        stats.request_misses,
        mix.len() as u64,
        "concurrent run must miss the request memo exactly once per unique request"
    );
    assert_eq!(
        stats.request_hits,
        total_requests - mix.len() as u64,
        "all non-leader request lookups must be hits"
    );
    assert_eq!(
        stats.plan_misses, baseline.plan_misses,
        "request leaders must miss exactly once per unique step fingerprint"
    );
    assert_eq!(
        stats.plan_hits + stats.plan_misses,
        baseline.plan_hits + baseline.plan_misses,
        "only request leaders consult the step-plan cache"
    );

    // The snapshot view agrees with the raw tallies and sees the entries.
    let snap = shared.snapshot();
    assert_eq!(snap.stats, stats);
    assert_eq!(snap.plan_entries as u64, baseline.plan_misses);
    assert_eq!(snap.request_entries, mix.len());
    assert!(snap.request_hit_rate > 0.9, "warm hit rate was {}", snap.request_hit_rate);
}

#[test]
fn shared_and_exclusive_apis_agree() {
    // `partition_cached` (&mut, single-threaded convenience) and
    // `partition_shared` (&, service path) must be the same computation.
    let (g, opts) = request_mix().swap_remove(0);
    let mut exclusive = SearchCaches::new();
    let via_mut = partition_cached(&g, &opts, &mut exclusive, None).expect("exclusive");
    let shared = SearchCaches::new();
    let via_shared = partition_shared(&g, &opts, &shared, None).expect("shared");
    assert_eq!(canonical(&via_mut), canonical(&via_shared));
    assert_eq!(exclusive.stats(), shared.stats());
}
