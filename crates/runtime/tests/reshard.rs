//! Property tests for checkpoint resharding: slicing a full tensor into one
//! plan's shard layout and reassembling it — within a plan or across two
//! plans with different worker counts (including prime and non-power-of-two
//! widths) — must be bit-identical and conserve every byte.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tofu_core::{generate, partition, GenOptions, PartitionOptions, ShardedGraph};
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{gather_shards, scatter_full, FullSnapshot};
use tofu_tensor::Tensor;

/// An MLP whose batch (840 = lcm 1..8) is divisible by every tested width,
/// so a feasible split exists for worker counts 2 through 8 — including the
/// primes 5 and 7 no power-of-two schedule reaches.
fn sharded_at(workers: usize) -> (tofu_graph::Graph, ShardedGraph) {
    let m = mlp(&MlpConfig { batch: 840, dims: vec![16], classes: 8, with_updates: true })
        .unwrap();
    let plan = partition(&m.graph, &PartitionOptions { workers, ..Default::default() }).unwrap();
    let sharded = generate(&m.graph, &plan, &GenOptions::default()).unwrap();
    (m.graph, sharded)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// scatter_full → gather_shards round-trips bit-identically under the
    /// source plan AND through a second plan at a different worker count,
    /// for every original tensor of the graph, conserving total bytes.
    #[test]
    fn reshard_round_trips_across_worker_counts(
        w_old in 2usize..9,
        w_new in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        prop_assume!(w_old != w_new);
        let (g, old) = sharded_at(w_old);
        let (_, new) = sharded_at(w_new);
        for (i, (&t, _)) in old.shards.iter().enumerate() {
            let full_shape = g.tensor(t).shape.clone();
            let full = Tensor::random(full_shape, seed + i as u64 + 1, 1.0);

            // Within-plan round trip.
            let mut values = BTreeMap::new();
            for (shard, piece) in scatter_full(&old, t, &full).unwrap() {
                values.insert(shard, piece);
            }
            let back = gather_shards(&old, t, &values).unwrap();
            prop_assert_eq!(back.shape(), full.shape(), "tensor {:?} changed shape", t);
            prop_assert_eq!(
                back.shape().bytes(),
                full.shape().bytes(),
                "tensor {:?} lost bytes", t
            );
            prop_assert_eq!(bits(&back), bits(&full), "tensor {:?} not bit-identical", t);

            // Cross-plan: reshard the gathered value onto the other width
            // and reassemble there.
            let mut values_new = BTreeMap::new();
            for (shard, piece) in scatter_full(&new, t, &back).unwrap() {
                values_new.insert(shard, piece);
            }
            let across = gather_shards(&new, t, &values_new).unwrap();
            prop_assert_eq!(
                bits(&across),
                bits(&full),
                "tensor {:?} corrupted by {} → {} reshard", t, w_old, w_new
            );
        }
    }

    /// A whole `FullSnapshot` survives shrink-then-grow AND grow-then-shrink
    /// resharding bit-for-bit: round-tripping every tensor through the
    /// narrower plan's shard layout and then the wider one's (and the other
    /// way round) reproduces the snapshot exactly. This is the invariant
    /// elastic recovery leans on when a run shrinks onto survivors and later
    /// grows back onto a rejoined device.
    #[test]
    fn snapshot_reshard_round_trips_in_both_directions(
        w_a in 2usize..9,
        w_b in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        prop_assume!(w_a != w_b);
        let (w_small, w_large) = (w_a.min(w_b), w_a.max(w_b));
        let (g, small) = sharded_at(w_small);
        let (_, large) = sharded_at(w_large);
        let mut tensors = BTreeMap::new();
        for (i, (&t, _)) in small.shards.iter().enumerate() {
            let full_shape = g.tensor(t).shape.clone();
            tensors.insert(t, Tensor::random(full_shape, seed + i as u64 + 1, 1.0));
        }
        let snap = FullSnapshot { ckpt: 1, every: 1, tensors };

        // Shrink then grow: through the narrow layout, then the wide one.
        let shrunk = snap.reshard_through(&small).unwrap();
        let regrown = shrunk.reshard_through(&large).unwrap();
        // Grow then shrink: the opposite order.
        let grown = snap.reshard_through(&large).unwrap();
        let reshrunk = grown.reshard_through(&small).unwrap();

        for (t, want) in &snap.tensors {
            for (name, got) in [
                ("shrink", &shrunk.tensors[t]),
                ("shrink→grow", &regrown.tensors[t]),
                ("grow", &grown.tensors[t]),
                ("grow→shrink", &reshrunk.tensors[t]),
            ] {
                prop_assert_eq!(got.shape(), want.shape(), "tensor {:?} changed shape", t);
                prop_assert_eq!(
                    bits(got),
                    bits(want),
                    "tensor {:?} corrupted by {} through {}/{} workers",
                    t, name, w_small, w_large
                );
            }
        }
    }
}
