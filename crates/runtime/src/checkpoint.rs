//! Checkpoint-restart recovery.
//!
//! A [`CheckpointPolicy`] makes every worker snapshot its live values at
//! *barrier* positions derived from the **global** schedule: checkpoint `k`
//! covers the first `k·every` nodes of the sharded graph's topological
//! order, and each worker's local cut for `k` is the length of its schedule
//! prefix inside that global prefix. Workers cross their cuts asynchronously;
//! a checkpoint is *consistent* once every worker has recorded it.
//!
//! Consistency argument (see DESIGN.md "Failure model"): a worker's values
//! map after its cut prefix is a pure function of the feeds, because worker
//! schedules are subsequences of one topological order and kernels are
//! deterministic. On restart from checkpoint `k`, channels are empty, so the
//! only missing state is messages: every piece a not-yet-executed consumer
//! needs is either produced *after* the sender's cut (re-sent naturally
//! during replay) or *before* it (replayed from the snapshot as an "owed
//! send" at resume startup). Pieces whose consumers already ran are not
//! re-sent. Hence the resumed run receives exactly the healthy run's
//! messages, and its output is bit-identical.

use std::collections::BTreeMap;
use std::time::Duration;

use tofu_core::ShardedGraph;
use tofu_graph::TensorId;
use tofu_tensor::Tensor;

use crate::error::RunFailure;
use crate::RunOutput;

/// Snapshot cadence, in **global** schedule steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot after every `every` nodes of the global topological order.
    pub every: usize,
}

/// Retry policy of [`run_with_recovery`](crate::run_with_recovery).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOptions {
    /// Total attempts (first run included). At least 1.
    pub max_attempts: usize,
    /// Sleep before the first retry; doubles after each further failure.
    pub backoff: Duration,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions { max_attempts: 3, backoff: Duration::from_millis(10) }
    }
}

/// What a recovered run hands back: the (verified-resumable) output plus the
/// failure history that led to it.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The successful run's output.
    pub output: RunOutput,
    /// Attempts consumed, first run included.
    pub attempts: usize,
    /// The failure of every aborted attempt, in order.
    pub failures: Vec<RunFailure>,
    /// Per retry: the checkpoint it resumed from (`None` = clean restart).
    pub resumed_from: Vec<Option<usize>>,
}

/// Per-worker cut positions of every checkpoint: `cuts[k - 1][w]` is the
/// local schedule prefix worker `w` must complete for checkpoint `k`.
pub(crate) fn checkpoint_cuts(sharded: &ShardedGraph, every: usize) -> Vec<Vec<usize>> {
    let n = sharded.graph.num_nodes();
    let k = sharded.workers;
    // Global topological position of every node (node_ids is the global
    // schedule order).
    let mut global_pos = vec![0usize; n];
    for (i, id) in sharded.graph.node_ids().enumerate() {
        global_pos[id.0] = i;
    }
    let mut cuts = Vec::new();
    let mut barrier = every;
    while barrier < n {
        let cut: Vec<usize> = (0..k)
            .map(|w| {
                sharded
                    .worker_schedule(w)
                    .iter()
                    .filter(|id| global_pos[id.0] < barrier)
                    .count()
            })
            .collect();
        cuts.push(cut);
        barrier += every;
    }
    cuts
}

/// A consistent checkpoint selected for resumption.
#[derive(Debug)]
pub(crate) struct ResumePoint {
    /// 1-based checkpoint id.
    pub ckpt: usize,
    /// Local cut per worker.
    pub cuts: Vec<usize>,
    /// Snapshot values per worker.
    pub values: Vec<BTreeMap<TensorId, Tensor>>,
}

/// Snapshots recorded so far, keyed by `(checkpoint, worker)`. Shared across
/// the attempts of one `run_with_recovery` call.
#[derive(Debug, Default)]
pub(crate) struct CheckpointStore {
    snaps: BTreeMap<(usize, usize), BTreeMap<TensorId, Tensor>>,
}

impl CheckpointStore {
    pub(crate) fn record(&mut self, ckpt: usize, worker: usize, values: BTreeMap<TensorId, Tensor>) {
        self.snaps.insert((ckpt, worker), values);
    }

    /// The highest checkpoint every one of `workers` workers has recorded.
    pub(crate) fn latest_consistent(&self, workers: usize, max_ckpt: usize) -> Option<usize> {
        (1..=max_ckpt)
            .rev()
            .find(|&k| (0..workers).all(|w| self.snaps.contains_key(&(k, w))))
    }

    /// Assembles the resume point for checkpoint `k` (which must be
    /// consistent).
    pub(crate) fn resume_point(
        &self,
        k: usize,
        workers: usize,
        cuts: &[Vec<usize>],
    ) -> ResumePoint {
        ResumePoint {
            ckpt: k,
            cuts: cuts[k - 1].clone(),
            values: (0..workers).map(|w| self.snaps[&(k, w)].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_consistent_requires_every_worker() {
        let mut s = CheckpointStore::default();
        assert_eq!(s.latest_consistent(2, 3), None);
        s.record(1, 0, BTreeMap::new());
        s.record(1, 1, BTreeMap::new());
        s.record(2, 0, BTreeMap::new());
        assert_eq!(s.latest_consistent(2, 3), Some(1), "checkpoint 2 misses worker 1");
        s.record(2, 1, BTreeMap::new());
        assert_eq!(s.latest_consistent(2, 3), Some(2));
    }
}
