//! The wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is one *frame*: a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON. Frames larger than the receiver's
//! configured maximum are rejected with a typed error before any payload
//! byte is read, so a hostile length prefix cannot make the server allocate.
//!
//! The JSON layer is `tofu-obs`'s zero-dependency [`Json`] value — the
//! workspace has no crates.io access, and the serve crate deliberately adds
//! no new dependencies.
//!
//! # Requests
//!
//! ```json
//! {"type":"partition","id":1,"tenant":"acme","workers":8,
//!  "deadline_ms":250,"options":{"allow_reduce":true},"graph":{...}}
//! {"type":"stats","id":2}
//! {"type":"ping","id":3}
//! ```
//!
//! # Responses
//!
//! ```json
//! {"type":"plan","id":1,"cached":true,"fingerprint":"...","plan":{...}}
//! {"type":"error","id":1,"code":"overloaded","message":"..."}
//! {"type":"stats","id":2,"serve":{...},"cache":{...}}
//! {"type":"pong","id":3}
//! ```
//!
//! The `plan` object is produced by [`plan_to_json`] and is **canonical**:
//! two bit-identical [`PartitionPlan`]s serialize to byte-identical JSON, so
//! clients (and the bench harness) verify served plans by comparing the
//! compact serialization against a locally computed
//! [`tofu_core::partition_cached`] plan.

use std::io::{Read, Write};

use tofu_core::recursive::{PartitionOptions, PartitionPlan};
use tofu_core::{ConcreteOut, ConcreteReq, NodeChoice};
use tofu_graph::{AttrValue, Attrs, Graph, NodeId, NodeTags, TensorId, TensorKind};
use tofu_obs::json::{parse, Json};
use tofu_tensor::Shape;

/// Default maximum frame payload size accepted by either side (8 MiB — a
/// WResNet-152 training graph serializes well under 2 MiB).
pub const DEFAULT_MAX_FRAME: usize = 8 << 20;

/// Errors of the frame and message layer.
#[derive(Debug)]
pub enum ProtocolError {
    /// An I/O error on the socket.
    Io(std::io::Error),
    /// The peer closed the connection mid-frame.
    Truncated {
        /// Bytes the frame header promised.
        want: usize,
    },
    /// The frame length prefix exceeds the configured maximum.
    Oversized {
        /// Advertised payload length.
        len: usize,
        /// The receiver's limit.
        max: usize,
    },
    /// The payload is not valid JSON.
    BadJson(String),
    /// The payload is valid JSON but not a valid message.
    BadRequest(String),
    /// The message's `type` field names no known request.
    UnknownType(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "io error: {e}"),
            ProtocolError::Truncated { want } => {
                write!(f, "connection closed mid-frame ({want} byte payload promised)")
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max} byte limit")
            }
            ProtocolError::BadJson(e) => write!(f, "malformed json: {e}"),
            ProtocolError::BadRequest(e) => write!(f, "bad request: {e}"),
            ProtocolError::UnknownType(t) => write!(f, "unknown request type {t:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed at
/// a frame boundary); [`ProtocolError::Truncated`] is a close mid-frame.
/// An oversized length prefix errors *before* reading the payload.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(ProtocolError::Io(e)),
    }
    r.read_exact(&mut len_buf[1..]).map_err(|e| map_eof(e, 4))?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max {
        return Err(ProtocolError::Oversized { len, max });
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| map_eof(e, len))?;
    Ok(Some(buf))
}

fn map_eof(e: std::io::Error, want: usize) -> ProtocolError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ProtocolError::Truncated { want }
    } else {
        ProtocolError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| ProtocolError::BadRequest("frame exceeds u32 length".into()))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// One partition request's business fields (everything but the envelope).
#[derive(Debug, Clone)]
pub struct PartitionRequest {
    /// Tenant the request is billed to (drives fair scheduling).
    pub tenant: String,
    /// The model graph to partition.
    pub graph: Graph,
    /// Search options (workers inside; unspecified fields are defaults).
    pub options: PartitionOptions,
    /// Relative deadline: the server answers `deadline_missed` instead of
    /// queueing past this. `None` = no deadline.
    pub deadline_ms: Option<u64>,
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Partition a model graph.
    Partition {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The request body.
        req: Box<PartitionRequest>,
    },
    /// Fetch service and cache statistics.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: u64,
    },
}

/// Machine-readable error category in an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The miss queue is full; retry later (admission control).
    Overloaded,
    /// The request's deadline elapsed before an answer was ready.
    DeadlineMissed,
    /// The message was structurally invalid.
    BadRequest,
    /// The `type` field named no known request.
    UnknownType,
    /// A frame exceeded the server's size limit.
    Oversized,
    /// The partition search itself failed (e.g. no strategy for an op).
    SearchFailed,
    /// An internal server error (a solver panic).
    Internal,
    /// The server is draining for shutdown and accepts no new work; queued
    /// requests still get answers, but this one arrived too late.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineMissed => "deadline_missed",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownType => "unknown_type",
            ErrorCode::Oversized => "oversized",
            ErrorCode::SearchFailed => "search_failed",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// Parses the wire spelling.
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "overloaded" => ErrorCode::Overloaded,
            "deadline_missed" => ErrorCode::DeadlineMissed,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_type" => ErrorCode::UnknownType,
            "oversized" => ErrorCode::Oversized,
            "search_failed" => ErrorCode::SearchFailed,
            "internal" => ErrorCode::Internal,
            "shutting_down" => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// A server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// A finished plan.
    Plan {
        /// Echoed correlation id.
        id: u64,
        /// True when answered from the shared response cache (vs computed
        /// for this request, possibly shared with concurrent duplicates).
        cached: bool,
        /// Hex request fingerprint (the response-cache key).
        fingerprint: String,
        /// The canonical plan object (see [`plan_to_json`]).
        plan: Json,
    },
    /// A typed failure.
    Error {
        /// Echoed correlation id (0 when the request had none readable).
        id: u64,
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Service + cache statistics.
    Stats {
        /// Echoed correlation id.
        id: u64,
        /// The statistics document (see the server for its fields).
        body: Json,
    },
    /// Liveness reply.
    Pong {
        /// Echoed correlation id.
        id: u64,
    },
}

// ---------------------------------------------------------------------------
// JSON helpers
// ---------------------------------------------------------------------------

fn bad(msg: impl Into<String>) -> ProtocolError {
    ProtocolError::BadRequest(msg.into())
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, ProtocolError> {
    opt_u64(obj, key)?.ok_or_else(|| bad(format!("missing field {key:?}")))
}

fn opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let f = v.as_f64().ok_or_else(|| bad(format!("field {key:?} is not a number")))?;
            if f < 0.0 || f.fract() != 0.0 || f > 9e15 {
                return Err(bad(format!("field {key:?} is not an unsigned integer")));
            }
            Ok(Some(f as u64))
        }
    }
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, ProtocolError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing string field {key:?}")))
}

fn get_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], ProtocolError> {
    obj.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| bad(format!("missing array field {key:?}")))
}

fn usize_item(v: &Json, what: &str) -> Result<usize, ProtocolError> {
    let f = v.as_f64().ok_or_else(|| bad(format!("{what} is not a number")))?;
    if f < 0.0 || f.fract() != 0.0 || f > 9e15 {
        return Err(bad(format!("{what} is not an unsigned integer")));
    }
    Ok(f as usize)
}

fn shape_json(s: &Shape) -> Json {
    Json::Arr(s.dims().iter().map(|&d| Json::from(d)).collect())
}

fn shape_from_json(v: &Json) -> Result<Shape, ProtocolError> {
    let items = v.as_array().ok_or_else(|| bad("shape is not an array"))?;
    let dims = items
        .iter()
        .map(|d| usize_item(d, "shape dim"))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Shape::new(dims))
}

// ---------------------------------------------------------------------------
// Graph codec
// ---------------------------------------------------------------------------

fn attrs_json(attrs: &Attrs) -> Json {
    Json::Obj(
        attrs
            .entries()
            .map(|(k, v)| {
                let val = match v {
                    AttrValue::Int(i) => Json::obj(vec![("i", Json::Num(*i as f64))]),
                    AttrValue::Float(f) => Json::obj(vec![("f", Json::Num(*f))]),
                    AttrValue::Str(s) => Json::obj(vec![("s", Json::from(s.as_str()))]),
                    AttrValue::IntVec(v) => Json::obj(vec![(
                        "iv",
                        Json::Arr(v.iter().map(|&i| Json::Num(i as f64)).collect()),
                    )]),
                };
                (k.to_string(), val)
            })
            .collect(),
    )
}

fn attrs_from_json(v: &Json) -> Result<Attrs, ProtocolError> {
    let Json::Obj(pairs) = v else { return Err(bad("attrs is not an object")) };
    let mut attrs = Attrs::new();
    for (k, val) in pairs {
        if let Some(i) = val.get("i") {
            let f = i.as_f64().ok_or_else(|| bad("attr int is not a number"))?;
            attrs.set(k, AttrValue::Int(f as i64));
        } else if let Some(f) = val.get("f") {
            attrs.set(k, AttrValue::Float(f.as_f64().ok_or_else(|| bad("attr float"))?));
        } else if let Some(s) = val.get("s") {
            attrs.set(
                k,
                AttrValue::Str(s.as_str().ok_or_else(|| bad("attr str"))?.to_string()),
            );
        } else if let Some(iv) = val.get("iv") {
            let items = iv.as_array().ok_or_else(|| bad("attr intvec"))?;
            let ints = items
                .iter()
                .map(|i| {
                    i.as_f64().map(|f| f as i64).ok_or_else(|| bad("attr intvec item"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            attrs.set(k, AttrValue::IntVec(ints));
        } else {
            return Err(bad(format!("attr {k:?} has no recognized value tag")));
        }
    }
    Ok(attrs)
}

fn tags_json(tags: &NodeTags) -> Option<Json> {
    let mut pairs: Vec<(&str, Json)> = Vec::new();
    if tags.is_backward {
        pairs.push(("bw", Json::Bool(true)));
    }
    if let Some(f) = tags.fw_origin {
        pairs.push(("fw", Json::from(f.0)));
    }
    if let Some(l) = tags.layer {
        pairs.push(("layer", Json::from(l)));
    }
    if let Some(t) = tags.timestep {
        pairs.push(("ts", Json::from(t)));
    }
    if let Some(c) = &tags.cell_position {
        pairs.push(("cell", Json::from(c.as_str())));
    }
    if pairs.is_empty() {
        None
    } else {
        Some(Json::obj(pairs))
    }
}

fn tags_from_json(v: Option<&Json>, num_nodes: usize) -> Result<NodeTags, ProtocolError> {
    let mut tags = NodeTags::default();
    let Some(v) = v else { return Ok(tags) };
    tags.is_backward = v.get("bw").and_then(Json::as_bool).unwrap_or(false);
    if let Some(f) = v.get("fw") {
        let idx = usize_item(f, "fw_origin")?;
        if idx >= num_nodes {
            return Err(bad(format!("fw_origin {idx} refers to a later node")));
        }
        tags.fw_origin = Some(NodeId(idx));
    }
    if let Some(l) = v.get("layer") {
        tags.layer = Some(usize_item(l, "layer")?);
    }
    if let Some(t) = v.get("ts") {
        tags.timestep = Some(usize_item(t, "timestep")?);
    }
    if let Some(c) = v.get("cell") {
        tags.cell_position =
            Some(c.as_str().ok_or_else(|| bad("cell tag is not a string"))?.to_string());
    }
    Ok(tags)
}

/// Serializes a graph for the wire: one entry per tensor in id order
/// (operator outputs carry their producing node), plus gradient links.
/// [`graph_from_json`] reconstructs a graph with identical tensor and node
/// ids, shapes, attrs, coarsening tags and control dependencies.
pub fn graph_to_json(g: &Graph) -> Json {
    let mut tensors = Vec::with_capacity(g.num_tensors());
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        let entry = match meta.kind {
            TensorKind::Input => Json::obj(vec![
                ("io", Json::from("input")),
                ("name", Json::from(meta.name.as_str())),
                ("shape", shape_json(&meta.shape)),
            ]),
            TensorKind::Weight => Json::obj(vec![
                ("io", Json::from("weight")),
                ("name", Json::from(meta.name.as_str())),
                ("shape", shape_json(&meta.shape)),
            ]),
            TensorKind::Intermediate => {
                let node = g.node(g.producer(t).expect("intermediate has a producer"));
                let mut n = vec![
                    ("op", Json::from(node.op.as_str())),
                    ("name", Json::from(node.name.as_str())),
                    (
                        "inputs",
                        Json::Arr(node.inputs.iter().map(|&i| Json::from(i.0)).collect()),
                    ),
                ];
                if !node.attrs.is_empty() {
                    n.push(("attrs", attrs_json(&node.attrs)));
                }
                if let Some(tags) = tags_json(&node.tags) {
                    n.push(("tags", tags));
                }
                if !node.control_deps.is_empty() {
                    n.push((
                        "deps",
                        Json::Arr(node.control_deps.iter().map(|&d| Json::from(d.0)).collect()),
                    ));
                }
                Json::obj(vec![
                    ("io", Json::from("op")),
                    ("shape", shape_json(&meta.shape)),
                    ("node", Json::obj(n)),
                ])
            }
        };
        tensors.push(entry);
    }
    let grads: Vec<Json> = g
        .tensor_ids()
        .filter_map(|t| {
            g.tensor(t)
                .grad_of
                .map(|f| Json::Arr(vec![Json::from(t.0), Json::from(f.0)]))
        })
        .collect();
    let mut pairs = vec![("tensors", Json::Arr(tensors))];
    if !grads.is_empty() {
        pairs.push(("grads", Json::Arr(grads)));
    }
    Json::obj(pairs)
}

/// Rebuilds a [`Graph`] from [`graph_to_json`]'s format, re-running shape
/// inference and verifying it reproduces the declared output shapes (so a
/// request built against a different operator registry fails loudly instead
/// of being partitioned under wrong shapes).
pub fn graph_from_json(v: &Json) -> Result<Graph, ProtocolError> {
    let tensors = get_arr(v, "tensors")?;
    let mut g = Graph::new();
    for (idx, entry) in tensors.iter().enumerate() {
        let io = get_str(entry, "io")?;
        let declared = shape_from_json(
            entry.get("shape").ok_or_else(|| bad(format!("tensor {idx} missing shape")))?,
        )?;
        let made = match io {
            "input" => g.add_input(get_str(entry, "name")?, declared.clone()),
            "weight" => g.add_weight(get_str(entry, "name")?, declared.clone()),
            "op" => {
                let node =
                    entry.get("node").ok_or_else(|| bad(format!("tensor {idx} missing node")))?;
                let op = get_str(node, "op")?;
                let name = get_str(node, "name")?;
                let inputs = get_arr(node, "inputs")?
                    .iter()
                    .map(|i| {
                        let t = usize_item(i, "node input")?;
                        if t >= idx {
                            return Err(bad(format!(
                                "node {name:?} consumes tensor {t} before it exists"
                            )));
                        }
                        Ok(TensorId(t))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let attrs = match node.get("attrs") {
                    Some(a) => attrs_from_json(a)?,
                    None => Attrs::new(),
                };
                let tags = tags_from_json(node.get("tags"), g.num_nodes())?;
                let out = g
                    .add_op_tagged(op, name, &inputs, attrs, tags)
                    .map_err(|e| bad(format!("node {name:?}: {e}")))?;
                if let Some(deps) = node.get("deps") {
                    let after = g.producer(out).expect("just added");
                    for d in deps.as_array().ok_or_else(|| bad("deps is not an array"))? {
                        let before = usize_item(d, "control dep")?;
                        if before >= after.0 {
                            return Err(bad(format!(
                                "node {name:?} control-depends on a later node {before}"
                            )));
                        }
                        g.add_control_dep(after, NodeId(before));
                    }
                }
                out
            }
            other => return Err(bad(format!("tensor {idx} has unknown io {other:?}"))),
        };
        if made.0 != idx {
            return Err(bad(format!("tensor ids diverged at {idx} (got {})", made.0)));
        }
        if g.tensor(made).shape != declared {
            return Err(bad(format!(
                "tensor {idx}: declared shape {:?} but shape inference produced {:?}",
                declared.dims(),
                g.tensor(made).shape.dims()
            )));
        }
    }
    if let Some(grads) = v.get("grads") {
        for pair in grads.as_array().ok_or_else(|| bad("grads is not an array"))? {
            let items = pair.as_array().ok_or_else(|| bad("grad pair is not an array"))?;
            if items.len() != 2 {
                return Err(bad("grad pair must have two elements"));
            }
            let grad = usize_item(&items[0], "grad tensor")?;
            let fwd = usize_item(&items[1], "forward tensor")?;
            if grad >= g.num_tensors() || fwd >= g.num_tensors() {
                return Err(bad("grad pair out of range"));
            }
            g.set_grad_of(TensorId(grad), TensorId(fwd));
        }
    }
    Ok(g)
}

// ---------------------------------------------------------------------------
// Options codec
// ---------------------------------------------------------------------------

fn options_from_json(v: &Json, workers: usize) -> Result<PartitionOptions, ProtocolError> {
    let mut opts = PartitionOptions { workers, ..Default::default() };
    if v == &Json::Null {
        return Ok(opts);
    }
    if let Some(b) = v.get("allow_reduce") {
        opts.allow_reduce = b.as_bool().ok_or_else(|| bad("allow_reduce is not a bool"))?;
    }
    if let Some(n) = opt_u64(v, "state_bound")? {
        opts.state_bound = n as usize;
    }
    if let Some(n) = opt_u64(v, "internal_bound")? {
        opts.internal_bound = n as usize;
    }
    if let Some(n) = opt_u64(v, "beam")? {
        opts.beam = n as usize;
    }
    if let Some(n) = opt_u64(v, "fetch_buffer_floor")? {
        opts.fetch_buffer_floor = n;
    }
    Ok(opts)
}

fn options_json(opts: &PartitionOptions) -> Json {
    Json::obj(vec![
        ("allow_reduce", Json::Bool(opts.allow_reduce)),
        ("state_bound", Json::from(opts.state_bound)),
        ("internal_bound", Json::from(opts.internal_bound)),
        ("beam", Json::from(opts.beam)),
        ("fetch_buffer_floor", Json::from(opts.fetch_buffer_floor)),
    ])
}

// ---------------------------------------------------------------------------
// Request / Response codec
// ---------------------------------------------------------------------------

impl Request {
    /// Parses a request frame's payload.
    pub fn from_bytes(payload: &[u8]) -> Result<Request, ProtocolError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| ProtocolError::BadJson("payload is not utf-8".into()))?;
        let v = parse(text).map_err(ProtocolError::BadJson)?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string field \"type\""))?
            .to_string();
        let id = get_u64(&v, "id")?;
        match ty.as_str() {
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "partition" => {
                let tenant = get_str(&v, "tenant")?.to_string();
                let workers = get_u64(&v, "workers")? as usize;
                if workers == 0 {
                    return Err(bad("workers must be >= 1"));
                }
                let options =
                    options_from_json(v.get("options").unwrap_or(&Json::Null), workers)?;
                let deadline_ms = opt_u64(&v, "deadline_ms")?;
                let graph = graph_from_json(
                    v.get("graph").ok_or_else(|| bad("missing field \"graph\""))?,
                )?;
                Ok(Request::Partition {
                    id,
                    req: Box::new(PartitionRequest { tenant, graph, options, deadline_ms }),
                })
            }
            other => Err(ProtocolError::UnknownType(other.to_string())),
        }
    }

    /// Serializes the request to a frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let v = match self {
            Request::Ping { id } => {
                Json::obj(vec![("type", Json::from("ping")), ("id", Json::from(*id))])
            }
            Request::Stats { id } => {
                Json::obj(vec![("type", Json::from("stats")), ("id", Json::from(*id))])
            }
            Request::Partition { id, req } => {
                return encode_partition(*id, &req.tenant, &req.graph, &req.options, req.deadline_ms)
            }
        };
        v.to_json().into_bytes()
    }
}

/// Encodes a partition-request payload from borrowed parts (the client's hot
/// path: no graph clone). Byte-identical to
/// `Request::Partition{..}.to_bytes()`.
pub fn encode_partition(
    id: u64,
    tenant: &str,
    graph: &Graph,
    options: &PartitionOptions,
    deadline_ms: Option<u64>,
) -> Vec<u8> {
    let mut pairs = vec![
        ("type", Json::from("partition")),
        ("id", Json::from(id)),
        ("tenant", Json::from(tenant)),
        ("workers", Json::from(options.workers)),
        ("options", options_json(options)),
    ];
    if let Some(ms) = deadline_ms {
        pairs.push(("deadline_ms", Json::from(ms)));
    }
    pairs.push(("graph", graph_to_json(graph)));
    Json::obj(pairs).to_json().into_bytes()
}

/// Builds a plan-response payload around an already-serialized plan (the
/// server's hot path: answering a cache hit splices the canonical plan text
/// instead of cloning and re-serializing its JSON tree). Byte-identical to
/// `Response::Plan{..}.to_bytes()` — the fingerprint is hex and the plan
/// text is canonical JSON, so no escaping is needed.
pub fn encode_plan_response(id: u64, cached: bool, fingerprint: &str, plan_json: &str) -> Vec<u8> {
    format!(
        "{{\"type\":\"plan\",\"id\":{id},\"cached\":{cached},\
         \"fingerprint\":\"{fingerprint}\",\"plan\":{plan_json}}}"
    )
    .into_bytes()
}

impl Response {
    /// Parses a response frame's payload.
    pub fn from_bytes(payload: &[u8]) -> Result<Response, ProtocolError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| ProtocolError::BadJson("payload is not utf-8".into()))?;
        let v = parse(text).map_err(ProtocolError::BadJson)?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("response missing \"type\""))?
            .to_string();
        let id = get_u64(&v, "id")?;
        match ty.as_str() {
            "pong" => Ok(Response::Pong { id }),
            "plan" => Ok(Response::Plan {
                id,
                cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
                fingerprint: get_str(&v, "fingerprint")?.to_string(),
                plan: v.get("plan").cloned().ok_or_else(|| bad("plan response missing plan"))?,
            }),
            "error" => {
                let code_str = get_str(&v, "code")?;
                let code = ErrorCode::from_wire(code_str)
                    .ok_or_else(|| bad(format!("unknown error code {code_str:?}")))?;
                Ok(Response::Error {
                    id,
                    code,
                    message: v.get("message").and_then(Json::as_str).unwrap_or("").to_string(),
                })
            }
            "stats" => Ok(Response::Stats { id, body: v }),
            other => Err(ProtocolError::UnknownType(other.to_string())),
        }
    }

    /// Serializes the response to a frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let v = match self {
            Response::Pong { id } => {
                Json::obj(vec![("type", Json::from("pong")), ("id", Json::from(*id))])
            }
            Response::Plan { id, cached, fingerprint, plan } => Json::obj(vec![
                ("type", Json::from("plan")),
                ("id", Json::from(*id)),
                ("cached", Json::Bool(*cached)),
                ("fingerprint", Json::from(fingerprint.as_str())),
                ("plan", plan.clone()),
            ]),
            Response::Error { id, code, message } => Json::obj(vec![
                ("type", Json::from("error")),
                ("id", Json::from(*id)),
                ("code", Json::from(code.as_str())),
                ("message", Json::from(message.as_str())),
            ]),
            Response::Stats { id, body } => {
                // `body` already carries type/id when built by the server;
                // rebuild the envelope for robustness.
                let mut pairs = vec![
                    ("type".to_string(), Json::from("stats")),
                    ("id".to_string(), Json::from(*id)),
                ];
                if let Json::Obj(fields) = body {
                    for (k, val) in fields {
                        if k != "type" && k != "id" {
                            pairs.push((k.clone(), val.clone()));
                        }
                    }
                }
                Json::Obj(pairs)
            }
        };
        v.to_json().into_bytes()
    }
}

// ---------------------------------------------------------------------------
// Plan codec (one-way, canonical)
// ---------------------------------------------------------------------------

fn req_json(r: &ConcreteReq) -> Json {
    match r {
        ConcreteReq::Unused => Json::from("unused"),
        ConcreteReq::Replicated => Json::from("replicated"),
        ConcreteReq::Split { dim, halo } => Json::obj(vec![
            ("dim", Json::from(*dim)),
            ("halo", Json::Num(*halo)),
        ]),
    }
}

/// Serializes a [`PartitionPlan`] canonically: bit-identical plans produce
/// byte-identical compact JSON. `search_time` is deliberately excluded — it
/// varies run to run and is not part of the plan's identity.
pub fn plan_to_json(plan: &PartitionPlan) -> Json {
    let steps: Vec<Json> = plan
        .steps
        .iter()
        .map(|s| {
            let choices: Vec<Json> = s
                .plan
                .node_choice
                .iter()
                .map(|c| match c {
                    NodeChoice::Ewise(spec) => {
                        Json::obj(vec![("ewise", Json::from(u64::from(spec.enc())))])
                    }
                    NodeChoice::Strategy(st) => {
                        let out = match st.out {
                            ConcreteOut::Split(d) => Json::from(d),
                            ConcreteOut::Reduce => Json::from("reduce"),
                        };
                        let mut pairs = vec![
                            ("id", Json::from(st.id.as_str())),
                            ("var", Json::from(st.var)),
                            ("var_extent", Json::from(st.var_extent)),
                            ("out", out),
                        ];
                        if let Some(r) = &st.reducer {
                            pairs.push(("reducer", Json::from(format!("{r}"))));
                        }
                        pairs.push(("inputs", Json::Arr(st.inputs.iter().map(req_json).collect())));
                        Json::obj(pairs)
                    }
                })
                .collect();
            Json::obj(vec![
                ("ways", Json::from(s.ways)),
                ("groups_before", Json::from(s.groups_before)),
                ("comm_bytes", Json::Num(s.plan.comm_bytes)),
                (
                    "tensor_spec",
                    Json::Arr(
                        s.plan
                            .tensor_spec
                            .iter()
                            .map(|spec| Json::from(u64::from(spec.enc())))
                            .collect(),
                    ),
                ),
                ("node_choice", Json::Arr(choices)),
            ])
        })
        .collect();
    let tiling: Vec<Json> = plan
        .tiling
        .iter()
        .map(|per_step| {
            Json::Arr(
                per_step
                    .iter()
                    .map(|d| d.map(Json::from).unwrap_or(Json::Null))
                    .collect(),
            )
        })
        .collect();
    Json::obj(vec![
        ("workers", Json::from(plan.workers)),
        ("total_comm_bytes", Json::Num(plan.total_comm_bytes())),
        ("steps", Json::Arr(steps)),
        ("tiling", Json::Arr(tiling)),
    ])
}

/// Formats a fingerprint for the wire (32 hex digits).
pub fn fingerprint_hex(fp: u128) -> String {
    format!("{fp:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"x\":1}").unwrap();
        let mut r = &buf[..];
        let got = read_frame(&mut r, 1024).unwrap().unwrap();
        assert_eq!(got, b"{\"x\":1}");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_before_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame(&mut &buf[..], 1024).unwrap_err();
        assert!(matches!(err, ProtocolError::Oversized { .. }));
    }

    #[test]
    fn truncated_frame_is_typed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        let err = read_frame(&mut &buf[..], 1024).unwrap_err();
        assert!(matches!(err, ProtocolError::Truncated { want: 100 }));
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineMissed,
            ErrorCode::BadRequest,
            ErrorCode::UnknownType,
            ErrorCode::Oversized,
            ErrorCode::SearchFailed,
            ErrorCode::Internal,
            ErrorCode::ShuttingDown,
        ] {
            assert_eq!(ErrorCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire("nope"), None);
    }

    #[test]
    fn unknown_request_type_is_typed() {
        let err = Request::from_bytes(br#"{"type":"frobnicate","id":3}"#).unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownType(t) if t == "frobnicate"));
    }

    #[test]
    fn fast_path_encoders_match_struct_codecs() {
        let mut g = Graph::new();
        let x = g.add_input("x", vec![8, 4].into());
        let w = g.add_weight("w", vec![4, 4].into());
        let _ = g
            .add_op("matmul", "y", &[x, w], tofu_graph::Attrs::new())
            .unwrap();
        let opts = PartitionOptions { workers: 4, ..Default::default() };
        for deadline in [None, Some(250u64)] {
            let via_struct = Request::Partition {
                id: 9,
                req: Box::new(PartitionRequest {
                    tenant: "t0".into(),
                    graph: g.clone(),
                    options: opts,
                    deadline_ms: deadline,
                }),
            }
            .to_bytes();
            assert_eq!(via_struct, encode_partition(9, "t0", &g, &opts, deadline));
        }

        let plan_json = "{\"workers\":4,\"steps\":[]}";
        let via_struct = Response::Plan {
            id: 7,
            cached: true,
            fingerprint: "00ff".into(),
            plan: parse(plan_json).unwrap(),
        }
        .to_bytes();
        assert_eq!(via_struct, encode_plan_response(7, true, "00ff", plan_json));
    }

    #[test]
    fn malformed_json_is_typed() {
        assert!(matches!(
            Request::from_bytes(b"{not json"),
            Err(ProtocolError::BadJson(_))
        ));
        assert!(matches!(
            Request::from_bytes(&[0xff, 0xfe]),
            Err(ProtocolError::BadJson(_))
        ));
    }
}
