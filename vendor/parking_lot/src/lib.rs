//! Offline stand-in for `parking_lot` 0.12 (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: locks
//! acquired through this crate never return `Result`, and a poisoned std
//! lock (a panic while held) is transparently recovered, matching
//! parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::{self, LockResult};

/// Read guard of [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard of [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard of [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn recover<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }
}

/// Mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
