//! TDL — the Tensor Description Language of the Tofu paper (§4).
//!
//! TDL describes *what* an operator computes, separately from *how* it is
//! implemented, using the "tensor-as-a-lambda" idea borrowed from Halide: the
//! output tensor is a function from coordinates (index variables) to a scalar
//! expression over the input tensors. The paper's running example is `conv1d`:
//!
//! ```text
//! @tofu.op
//! def conv1d(data, filters):
//!     return lambda b, co, x:
//!         Sum(lambda ci, dx: data[b, ci, x+dx] * filters[ci, co, dx])
//! ```
//!
//! which this crate writes as:
//!
//! ```
//! use tofu_tdl::{DescBuilder, Reducer};
//!
//! let mut b = DescBuilder::new("conv1d", &[3, 3]);
//! let (bb, co, x) = (b.output_var("b"), b.output_var("co"), b.output_var("x"));
//! let (ci, dx) = (b.reduce_var("ci"), b.reduce_var("dx"));
//! let body = b.input(0, &[bb.at(), ci.at(), x.at() + dx.at()])
//!     * b.input(1, &[ci.at(), co.at(), dx.at()]);
//! let desc = b.build_reduce(Reducer::Sum, body).unwrap();
//! assert_eq!(desc.output_rank(), 3);
//! ```
//!
//! Three things are computed from a description, all used by `tofu-core`:
//!
//! 1. **Region analysis** ([`analysis`]): symbolic-interval abstract
//!    interpretation (Fig. 4 of the paper) that yields, for any assignment of
//!    index-variable ranges, the region of every input tensor the computation
//!    touches.
//! 2. **Strategy discovery** ([`strategy`]): enumerates every basic 2-worker
//!    *partition-n-reduce* strategy — Case-1 splits along an output dimension
//!    (including halo-exchange splits), Case-2 splits along a reduction
//!    dimension and reduces the partial outputs.
//! 3. **Classification**: element-wise detection (drives graph coarsening)
//!    and opaque-function handling (batched Cholesky et al., where only batch
//!    dimensions are partitionable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod analysis;
pub mod builder;
pub mod expr;
pub mod interval;
pub mod strategy;

pub use affine::AffineForm;
pub use analysis::{access_regions, bind_extents, Region};
pub use builder::{DescBuilder, Exp, Var};
pub use expr::{
    AffineIndex, BinaryOp, IndexExpr, Reducer, ScalarExpr, TdlDesc, TdlError, UnaryOp, VarId,
    VarKind,
};
pub use interval::SymInterval;
pub use strategy::{discover_strategies, BasicStrategy, InputRequirement, OutputPartition};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TdlError>;
