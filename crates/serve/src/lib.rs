//! A multi-tenant partition-plan *service* over the Tofu search engine.
//!
//! Training jobs across a cluster repeatedly partition the same or similar
//! model graphs (hyper-parameter sweeps, elastic re-partitioning after
//! worker loss, per-team model templates). Running the §5 search inside
//! every job wastes that overlap; this crate hosts the search behind a tiny
//! TCP protocol so the whole fleet shares one concurrent plan cache:
//!
//! * [`protocol`] — length-prefixed JSON frames, request/response types and
//!   the canonical graph/plan codecs (zero new dependencies: the JSON layer
//!   is `tofu-obs`'s).
//! * [`scheduler`] — per-tenant round-robin queueing with a bounded
//!   admission cap (typed `overloaded` rejections instead of collapse).
//! * [`server`] — the acceptor, connection handlers and solver pool over one
//!   shared [`tofu_core::SearchCaches`], with serve-level single-flight
//!   deduplication and request deadlines.
//! * [`client`] — a small blocking client used by the benches, tests and
//!   the `serve` binary's demo mode.
//!
//! Served plans are **bit-identical** to a local single-threaded
//! [`tofu_core::partition_cached`] call for the same graph and options:
//! every cache layer keys on exact structural identity and stores a pure
//! function of its key, so concurrency decides only who computes first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::{ClientError, PlanClient, RetryOptions, ServedPlan};
pub use protocol::{plan_to_json, ErrorCode, ProtocolError, Request, Response};
pub use scheduler::FairScheduler;
pub use server::{PlanServer, ServeConfig};
