//! Graph coarsening (§5.1).
//!
//! Coarsening shrinks the DP search space in two ways:
//!
//! 1. **Groups** — the unit the DP steps over. Each forward operator is
//!    grouped with its auto-generated backward operators and with the
//!    gradient-aggregation summations; optimizer updates join the group that
//!    produces their gradient; consecutive element-wise operators merge; and
//!    unrolled RNN timesteps of the same cell position merge (detected via
//!    the `cell_position`/`timestep` tags set by the framework's unroll
//!    helper, exactly as the paper detects MXNet/PyTorch unrolling).
//! 2. **Classes** — the unit that shares one strategy choice. All timestep
//!    instances of a cell operator form one class, and a maximal run of
//!    coalesced element-wise operators forms one class whose members must be
//!    partitioned identically (their input/output tensors always share a
//!    partition).
//!
//! Every class is contained in one group; a group may hold several classes
//! (e.g. a convolution's forward, backward-data and backward-filter
//! operators are three classes of one group, searched combinatorially).

use tofu_graph::{Graph, NodeId, OpCategory, TensorKind};

/// Disjoint-set forest over node indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller root so group order follows insertion order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// One coarsened group.
#[derive(Debug, Clone)]
pub struct GroupInfo {
    /// Member nodes in insertion order.
    pub nodes: Vec<NodeId>,
    /// Strategy classes present in this group (indices into
    /// [`CoarseGraph::class_nodes`]).
    pub classes: Vec<usize>,
}

/// The result of coarsening.
#[derive(Debug, Clone)]
pub struct CoarseGraph {
    /// Groups ordered by their earliest member node (forward order).
    pub groups: Vec<GroupInfo>,
    /// Group index of each node.
    pub group_of: Vec<usize>,
    /// Strategy class of each node.
    pub class_of: Vec<usize>,
    /// Member nodes of each class, in insertion order.
    pub class_nodes: Vec<Vec<NodeId>>,
    /// True when the class is a coalesced element-wise run (its strategy
    /// space is "one dimension for everything").
    pub class_is_ewise: Vec<bool>,
}

impl CoarseGraph {
    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// True when the group-level structure is a linear chain: every group's
    /// tensor consumers span at most the next group in order (fork-join
    /// within the window counts as linear, matching the paper's footnote).
    pub fn is_linear(&self, g: &Graph, window: usize) -> bool {
        for (gi, group) in self.groups.iter().enumerate() {
            for &n in &group.nodes {
                let out = g.node(n).output;
                for c in g.consumers(out) {
                    let cg = self.group_of[c.0];
                    if cg > gi && cg - gi > window {
                        return false;
                    }
                }
            }
        }
        true
    }
}

fn is_ewise_op(g: &Graph, n: NodeId) -> bool {
    let node = g.node(n);
    if node.op == "add_n" {
        return true;
    }
    match tofu_graph::lookup(&node.op) {
        Ok(def) => matches!(def.category, OpCategory::Elementwise | OpCategory::Optimizer),
        Err(_) => false,
    }
}

/// Computes the coarsened graph.
pub fn coarsen(g: &Graph) -> CoarseGraph {
    let n = g.num_nodes();
    let mut groups = UnionFind::new(n);
    let mut classes = UnionFind::new(n);

    // Precompute consumer counts per tensor for the single-consumer test.
    let mut consumer_count = vec![0usize; g.num_tensors()];
    for id in g.node_ids() {
        for &t in &g.node(id).inputs {
            consumer_count[t.0] += 1;
        }
    }

    // Rule 1: backward operators join their forward origin's group.
    // Rule 2: other backward nodes (gradient aggregation, the seed) join the
    //         group producing their first input.
    // Rule 3: optimizer updates join the group producing their gradient.
    for id in g.node_ids() {
        let node = g.node(id);
        if node.tags.is_backward {
            if let Some(origin) = node.tags.fw_origin {
                groups.union(id.0, origin.0);
            } else if let Some(&first) = node.inputs.first() {
                if let Some(p) = g.producer(first) {
                    groups.union(id.0, p.0);
                }
            }
        }
        let is_optimizer = tofu_graph::lookup(&node.op)
            .map(|d| d.category == OpCategory::Optimizer)
            .unwrap_or(false);
        if is_optimizer {
            if let Some(&grad_in) = node.inputs.get(1) {
                if let Some(p) = g.producer(grad_in) {
                    groups.union(id.0, p.0);
                }
            }
        }
    }

    // Rule 4: coalesce consecutive element-wise operators (groups AND
    // classes — coalesced element-wise runs share one partition).
    for id in g.node_ids() {
        if !is_ewise_op(g, id) {
            continue;
        }
        for &t in &g.node(id).inputs {
            let meta = g.tensor(t);
            if meta.kind != TensorKind::Intermediate || consumer_count[t.0] != 1 {
                continue;
            }
            if let Some(p) = g.producer(t) {
                if is_ewise_op(g, p) {
                    groups.union(id.0, p.0);
                    classes.union(id.0, p.0);
                }
            }
        }
    }

    // Rule 5: merge unrolled timesteps — nodes instantiating the same cell
    // position across timesteps share a group and a class. The class key
    // distinguishes backward siblings of the same origin by op and ordinal.
    use std::collections::BTreeMap;
    let mut position_reps: BTreeMap<(String, bool, String, usize), usize> = BTreeMap::new();
    let mut ordinal_counter: BTreeMap<(String, bool, String, Option<usize>), usize> =
        BTreeMap::new();
    for id in g.node_ids() {
        let node = g.node(id);
        let Some(cp) = node.tags.cell_position.clone() else { continue };
        let op = node.op.clone();
        let bw = node.tags.is_backward;
        let ord_key = (cp.clone(), bw, op.clone(), node.tags.timestep);
        let ordinal = {
            let c = ordinal_counter.entry(ord_key).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        let class_key = (cp, bw, op, ordinal);
        match position_reps.get(&class_key) {
            Some(&rep) => {
                groups.union(id.0, rep);
                classes.union(id.0, rep);
            }
            None => {
                position_reps.insert(class_key, id.0);
            }
        }
    }

    // Materialize groups (ordered by smallest member) and classes.
    let mut group_index: BTreeMap<usize, usize> = BTreeMap::new();
    let mut class_index: BTreeMap<usize, usize> = BTreeMap::new();
    let mut group_of = vec![0usize; n];
    let mut class_of = vec![0usize; n];
    let mut group_nodes: Vec<Vec<NodeId>> = Vec::new();
    let mut class_nodes: Vec<Vec<NodeId>> = Vec::new();
    for i in 0..n {
        let groot = groups.find(i);
        let gi = *group_index.entry(groot).or_insert_with(|| {
            group_nodes.push(Vec::new());
            group_nodes.len() - 1
        });
        group_of[i] = gi;
        group_nodes[gi].push(NodeId(i));

        let croot = classes.find(i);
        let ci = *class_index.entry(croot).or_insert_with(|| {
            class_nodes.push(Vec::new());
            class_nodes.len() - 1
        });
        class_of[i] = ci;
        class_nodes[ci].push(NodeId(i));
    }

    let class_is_ewise: Vec<bool> = class_nodes
        .iter()
        .map(|members| members.iter().all(|&m| is_ewise_op(g, m)))
        .collect();

    let groups_out: Vec<GroupInfo> = group_nodes
        .into_iter()
        .map(|nodes| {
            let mut cls: Vec<usize> = nodes.iter().map(|&m| class_of[m.0]).collect();
            cls.sort_unstable();
            cls.dedup();
            GroupInfo { nodes, classes: cls }
        })
        .collect();

    CoarseGraph { groups: groups_out, group_of, class_of, class_nodes, class_is_ewise }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_graph::{autodiff, Attrs, NodeTags};
    use tofu_tensor::Shape;

    /// A 2-layer MLP with loss, autodiff and SGD updates.
    fn mlp() -> (Graph, usize) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![8, 16]));
        let labels = g.add_input("labels", Shape::new(vec![8]));
        let w1 = g.add_weight("w1", Shape::new(vec![16, 32]));
        let w2 = g.add_weight("w2", Shape::new(vec![32, 10]));
        let h = g.add_op("matmul", "fc1", &[x, w1], Attrs::new()).unwrap();
        let a = g.add_op("sigmoid", "act1", &[h], Attrs::new()).unwrap();
        let logits = g.add_op("matmul", "fc2", &[a, w2], Attrs::new()).unwrap();
        let loss = g.add_op("softmax_ce", "loss", &[logits, labels], Attrs::new()).unwrap();
        let n_forward = g.num_nodes();
        let info = autodiff::backward(&mut g, loss, &[w1, w2]).unwrap();
        for (w, name) in [(w1, "upd1"), (w2, "upd2")] {
            let gw = info.grad(w).unwrap();
            g.add_op("sgd_update", name, &[w, gw], Attrs::new().with_float("lr", 0.1)).unwrap();
        }
        (g, n_forward)
    }

    #[test]
    fn backward_joins_forward_group() {
        let (g, _) = mlp();
        let cg = coarsen(&g);
        for id in g.node_ids() {
            let node = g.node(id);
            if let Some(origin) = node.tags.fw_origin {
                assert_eq!(
                    cg.group_of[id.0],
                    cg.group_of[origin.0],
                    "bw node {} not grouped with its origin",
                    node.name
                );
            }
        }
    }

    #[test]
    fn coarsened_mlp_is_compact_and_linear() {
        let (g, _) = mlp();
        let cg = coarsen(&g);
        // fc1, act1, fc2, loss: four groups (optimizers and aggregations
        // merge into them). Far fewer groups than nodes.
        assert!(cg.num_groups() <= 5, "groups: {}", cg.num_groups());
        assert!(cg.num_groups() < g.num_nodes() / 2);
        assert!(cg.is_linear(&g, 2));
    }

    #[test]
    fn optimizer_joins_gradient_producer_group() {
        let (g, _) = mlp();
        let cg = coarsen(&g);
        for id in g.node_ids() {
            let node = g.node(id);
            if node.op == "sgd_update" {
                let grad_producer = g.producer(node.inputs[1]).unwrap();
                assert_eq!(cg.group_of[id.0], cg.group_of[grad_producer.0]);
            }
        }
    }

    #[test]
    fn elementwise_chain_coalesces_to_one_class() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![4, 4]));
        let a = g.add_op("relu", "a", &[x], Attrs::new()).unwrap();
        let b = g.add_op("tanh", "b", &[a], Attrs::new()).unwrap();
        let _c = g.add_op("sigmoid", "c", &[b], Attrs::new()).unwrap();
        let cg = coarsen(&g);
        assert_eq!(cg.num_groups(), 1);
        assert_eq!(cg.groups[0].classes.len(), 1);
        assert!(cg.class_is_ewise[cg.groups[0].classes[0]]);
    }

    #[test]
    fn fan_out_blocks_elementwise_coalescing() {
        // x -> relu -> {tanh, sigmoid}: relu's output has two consumers, so
        // the chain must not merge through it.
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![4, 4]));
        let a = g.add_op("relu", "a", &[x], Attrs::new()).unwrap();
        let _b = g.add_op("tanh", "b", &[a], Attrs::new()).unwrap();
        let _c = g.add_op("sigmoid", "c", &[a], Attrs::new()).unwrap();
        let cg = coarsen(&g);
        assert_eq!(cg.num_groups(), 3);
    }

    #[test]
    fn matmul_breaks_elementwise_runs() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![4, 4]));
        let w = g.add_weight("w", Shape::new(vec![4, 4]));
        let a = g.add_op("relu", "a", &[x], Attrs::new()).unwrap();
        let m = g.add_op("matmul", "m", &[a, w], Attrs::new()).unwrap();
        let _b = g.add_op("relu", "b", &[m], Attrs::new()).unwrap();
        let cg = coarsen(&g);
        assert_eq!(cg.num_groups(), 3);
    }

    #[test]
    fn timestep_instances_merge() {
        // Two timesteps of a toy cell: h_t = tanh(matmul(h_{t-1}, w)).
        let mut g = Graph::new();
        let w = g.add_weight("w", Shape::new(vec![4, 4]));
        let mut h = g.add_input("h0", Shape::new(vec![2, 4]));
        for t in 0..3 {
            let tags = |pos: &str| NodeTags {
                timestep: Some(t),
                cell_position: Some(pos.to_string()),
                ..NodeTags::default()
            };
            let m = g
                .add_op_tagged("matmul", &format!("mm_t{t}"), &[h, w], Attrs::new(), tags("cell/mm"))
                .unwrap();
            h = g
                .add_op_tagged("tanh", &format!("act_t{t}"), &[m], Attrs::new(), tags("cell/act"))
                .unwrap();
        }
        let cg = coarsen(&g);
        // Each cell position coalesces across timesteps into its own group
        // (matmuls in one, activations in another) — the RNN becomes a chain
        // of coalesced operators, §5.1.
        assert_eq!(cg.num_groups(), 2);
        let mm_class = cg.class_of[0];
        assert_eq!(cg.class_nodes[mm_class].len(), 3);
        let act_class = cg.class_of[1];
        assert_eq!(cg.class_nodes[act_class].len(), 3);
        assert_ne!(mm_class, act_class);
    }

    #[test]
    fn class_is_contained_in_group() {
        let (g, _) = mlp();
        let cg = coarsen(&g);
        for members in &cg.class_nodes {
            let g0 = cg.group_of[members[0].0];
            assert!(members.iter().all(|m| cg.group_of[m.0] == g0));
        }
    }

    #[test]
    fn group_count_matches_paper_claim_for_mlp() {
        // §5.1: after grouping, the coarsened graph is isomorphic to the
        // forward graph. Our MLP forward graph has 4 operators.
        let (g, n_forward) = mlp();
        let cg = coarsen(&g);
        assert!(cg.num_groups() <= n_forward);
    }
}
