//! Per-worker buffer pool seeded from the static memory planner.
//!
//! The pool replays a [`BufferPlan`]'s slot actions against real backing
//! allocations: every planner slot becomes one `Vec<u8>` arena that is
//! allocated (or grown) exactly when the plan says so. Its high-water mark is
//! therefore the *measured* transient footprint of the worker, which the
//! tests hold against `tofu-sim`'s independent `per_device_memory`
//! prediction.
//!
//! An optional byte **budget** models a device memory cap: any `apply` that
//! finds (or leaves) the pool above the budget fails with a typed over-budget
//! pool error. The fault injector clamps the budget below the current
//! occupancy to force this path deterministically.

use tofu_graph::{BufferPlan, SlotAction};

use crate::error::RuntimeError;
use crate::Result;

/// Real backing storage for one worker's transient tensors.
#[derive(Debug, Default)]
pub struct BufferPool {
    worker: usize,
    slots: Vec<Vec<u8>>,
    current: u64,
    peak: u64,
    budget: Option<u64>,
}

impl BufferPool {
    /// An empty pool owned by `worker`; arenas appear as the plan's actions
    /// are applied.
    pub fn new(worker: usize) -> BufferPool {
        BufferPool { worker, ..BufferPool::default() }
    }

    /// Caps resident arena bytes; `None` removes the cap.
    pub fn set_budget(&mut self, bytes: Option<u64>) {
        self.budget = bytes;
    }

    /// The configured byte cap, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn err(&self, detail: String) -> RuntimeError {
        RuntimeError::Pool { worker: self.worker, detail }
    }

    fn check_budget(&self) -> Result<()> {
        if let Some(b) = self.budget {
            if self.current > b {
                return Err(self.err(format!(
                    "over budget: {} B resident exceeds the {} B cap",
                    self.current, b
                )));
            }
        }
        Ok(())
    }

    /// Applies the placement action of one schedule position. `need` is the
    /// byte size of the node's output tensor.
    pub fn apply(&mut self, action: SlotAction, need: u64) -> Result<()> {
        self.check_budget()?;
        match action {
            SlotAction::InPlace { slot } => {
                let have = self.slot_len(slot)?;
                if have < need {
                    return Err(self.err(format!(
                        "in-place takeover of slot {slot} ({have} B) needs {need} B"
                    )));
                }
            }
            SlotAction::Reuse { slot, grown_by } => {
                let have = self.slot_len(slot)?;
                if grown_by > 0 {
                    self.slots[slot].resize((have + grown_by) as usize, 0);
                    self.current += grown_by;
                    self.peak = self.peak.max(self.current);
                }
                if self.slot_len(slot)? < need {
                    return Err(self.err(format!(
                        "slot {slot} holds {} B after growth but {need} B are needed",
                        self.slots[slot].len()
                    )));
                }
            }
            SlotAction::Alloc { slot } => {
                if slot != self.slots.len() {
                    return Err(self.err(format!(
                        "plan allocates slot {slot} but pool holds {}",
                        self.slots.len()
                    )));
                }
                self.slots.push(vec![0u8; need as usize]);
                self.current += need;
                self.peak = self.peak.max(self.current);
            }
        }
        self.check_budget()
    }

    fn slot_len(&self, slot: usize) -> Result<u64> {
        self.slots
            .get(slot)
            .map(|s| s.len() as u64)
            .ok_or_else(|| self.err(format!("plan references unallocated slot {slot}")))
    }

    /// High-water mark of resident arena bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Currently resident arena bytes.
    pub fn current_bytes(&self) -> u64 {
        self.current
    }

    /// Number of physical arenas.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Checks the fully-applied pool against its seeding plan: same arenas,
    /// same sizes, same peak.
    pub fn verify_against(&self, plan: &BufferPlan) -> Result<()> {
        if self.slot_count() != plan.slot_bytes.len()
            || self
                .slots
                .iter()
                .zip(&plan.slot_bytes)
                .any(|(s, &b)| s.len() as u64 != b)
        {
            return Err(self.err("pool arenas diverged from the plan".into()));
        }
        if self.peak != plan.mem.peak_transient_bytes {
            return Err(self.err(format!(
                "pool peak {} B but the plan predicted {} B",
                self.peak, plan.mem.peak_transient_bytes
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_alloc_reuse_grow() {
        let mut p = BufferPool::new(0);
        p.apply(SlotAction::Alloc { slot: 0 }, 100).unwrap();
        p.apply(SlotAction::Alloc { slot: 1 }, 50).unwrap();
        p.apply(SlotAction::InPlace { slot: 0 }, 100).unwrap();
        p.apply(SlotAction::Reuse { slot: 1, grown_by: 30 }, 80).unwrap();
        assert_eq!(p.peak_bytes(), 180);
        assert_eq!(p.current_bytes(), 180);
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn rejects_inconsistent_plans() {
        let mut p = BufferPool::new(0);
        assert!(p.apply(SlotAction::InPlace { slot: 0 }, 1).is_err());
        assert!(p.apply(SlotAction::Alloc { slot: 3 }, 1).is_err());
        p.apply(SlotAction::Alloc { slot: 0 }, 10).unwrap();
        assert!(p.apply(SlotAction::InPlace { slot: 0 }, 11).is_err());
    }

    #[test]
    fn budget_trips_typed_over_budget_error() {
        let mut p = BufferPool::new(7);
        p.set_budget(Some(120));
        p.apply(SlotAction::Alloc { slot: 0 }, 100).unwrap();
        let err = p.apply(SlotAction::Alloc { slot: 1 }, 50).unwrap_err();
        match err {
            RuntimeError::Pool { worker, detail } => {
                assert_eq!(worker, 7);
                assert!(detail.contains("over budget"), "got: {detail}");
            }
            other => panic!("expected Pool error, got {other}"),
        }
        // Clamping below current occupancy fails the very next apply, even a
        // growth-free one — the fault injector relies on this.
        let mut q = BufferPool::new(1);
        q.apply(SlotAction::Alloc { slot: 0 }, 100).unwrap();
        q.set_budget(Some(99));
        assert!(q.apply(SlotAction::InPlace { slot: 0 }, 100).is_err());
    }
}
