//! Fig. 9: RNN training throughput (samples/sec) on 8 simulated GPUs for
//! Ideal, SmallBatch, Swapping, Op-Placement and Tofu, with the paper's
//! numbers beside each bar.

use tofu_bench::{
    batch_candidates, bench_report, fmt_outcome, fmt_paper, outcome_json, paper_json,
    rnn_builder, rule, write_report, Json,
};
use tofu_core::baselines::Algorithm;
use tofu_sim::{ideal, op_placement, small_batch, swap, Machine};

/// Paper Fig. 9 throughputs; per hidden size: [ideal, smallbatch, swap,
/// op-placement, tofu]; `None` = OOM.
type Row = [[Option<f64>; 5]; 3];

const PAPER: [(usize, Row); 3] = [
    (
        6,
        [
            [Some(233.0), Some(130.0), Some(183.0), Some(107.0), Some(210.0)],
            [Some(108.0), None, Some(32.0), Some(44.0), Some(102.0)],
            [Some(58.0), None, Some(13.0), Some(24.0), Some(57.0)],
        ],
    ),
    (
        8,
        [
            [Some(172.0), None, Some(120.0), Some(95.0), Some(154.0)],
            [Some(78.0), None, Some(18.0), Some(40.0), Some(75.0)],
            [Some(45.0), None, Some(9.3), Some(22.0), Some(41.0)],
        ],
    ),
    (
        10,
        [
            [Some(136.0), None, Some(58.0), Some(59.0), Some(122.0)],
            [Some(60.0), None, Some(13.0), Some(21.0), Some(55.0)],
            [Some(33.0), None, Some(7.2), None, Some(23.0)],
        ],
    ),
];

fn main() {
    let machine = Machine::p2_8xlarge();
    let quick = std::env::args().any(|a| a == "--quick");
    let hiddens: &[usize] = if quick { &[4096] } else { &[4096, 6144, 8192] };
    let layer_rows: &[(usize, Row)] = if quick { &PAPER[..1] } else { &PAPER };
    let candidates = batch_candidates();

    let mut results: Vec<Json> = Vec::new();
    for (layers, paper) in layer_rows {
        println!("\nFig. 9: {layers}-layer RNN throughput (samples/sec), ours | paper");
        println!(
            "{:<6} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
            "H", "Ideal", "(paper)", "SmallB", "(paper)", "Swap", "(paper)", "OpPlace",
            "(paper)", "Tofu", "(paper)"
        );
        rule(118);
        for (hi, &hidden) in hiddens.iter().enumerate() {
            let build = rnn_builder(*layers, hidden);
            let ideal_out = ideal(&build, 512, &machine);
            let sb_out = small_batch(&build, &candidates, &machine);
            let swap_out = swap(&build, &candidates, &machine);
            // Op placement uses the biggest batch that fits its layer-wise
            // memory split.
            let mut op_out = tofu_sim::Outcome::Oom { peak_gb: 0.0 };
            for &batch in &candidates {
                if let Some(g) = build(batch) {
                    let out = op_placement(&g, batch, &machine, true);
                    if out.ran() {
                        op_out = out;
                        break;
                    }
                    op_out = out;
                }
            }
            let (tofu_out, _) =
                tofu_bench::partitioned_sweep(&build, Algorithm::Tofu, &candidates, &machine);
            println!(
                "{:<6} {} {} | {} {} | {} {} | {} {} | {} {}",
                hidden / 1024 * 1000 + hidden % 1024, // 4096 -> 4000-ish label
                fmt_outcome(&ideal_out),
                fmt_paper(paper[hi][0]),
                fmt_outcome(&sb_out),
                fmt_paper(paper[hi][1]),
                fmt_outcome(&swap_out),
                fmt_paper(paper[hi][2]),
                fmt_outcome(&op_out),
                fmt_paper(paper[hi][3]),
                fmt_outcome(&tofu_out),
                fmt_paper(paper[hi][4]),
            );
            results.push(Json::obj(vec![
                ("layers", Json::from(*layers)),
                ("hidden", Json::from(hidden)),
                ("ideal", outcome_json(&ideal_out)),
                ("small_batch", outcome_json(&sb_out)),
                ("swap", outcome_json(&swap_out)),
                ("op_placement", outcome_json(&op_out)),
                ("tofu", outcome_json(&tofu_out)),
                (
                    "paper",
                    Json::Arr(paper[hi].iter().map(|&v| paper_json(v)).collect()),
                ),
            ]));
        }
    }
    write_report(
        "BENCH_fig9.json",
        &bench_report("fig9", vec![("quick", Json::Bool(quick))], results),
    );
    println!(
        "\nShape checks: Tofu wins every configuration (matmuls starve at small\n\
         batches, so SmallBatch never beats it here); Swap collapses as weights\n\
         grow (shared 10 GB/s host link); Op-Placement reaches 38-61% of Tofu."
    );
}
