//! Fleet-churn sweep: drives MLP and WResNet training runs through scripted
//! leave/rejoin sequences on 8 workers and records, per fleet transition,
//! the full recovery-latency breakdown — failure detection (shrinks),
//! partition replan (warm vs cold), snapshot reshard, and the first
//! attempt's wall time at the new width — into `BENCH_churn.json`.
//!
//! Every scenario runs twice: a **cold** pass against a fresh `SearchCaches`
//! (replans pay the full search) and a **warm** pass reusing the cold pass's
//! caches (replans are plan-cache lookups). The two passes must agree on the
//! whole ladder — widths, losses, joins — and both must finish bit-identical
//! to an undisturbed run at the final width resumed from the same snapshot
//! cut. When the two passes also harvested the *same* cuts (which barrier a
//! shrink carries is timing-dependent), their outputs must be bit-identical
//! to each other; across different cuts the width changes reorder the
//! floating-point reductions, so only the per-pass baseline check applies.
//!
//! The bin exits non-zero if any output diverges from its baseline, if no
//! grow event fired across the sweep, or if the warm passes' replans are not
//! faster than the cold passes' in aggregate.

use std::collections::BTreeMap;
use std::time::Duration;

use tofu_bench::{bench_report, feeds, write_report, Json};
use tofu_core::{PartitionOptions, SearchCaches};
use tofu_graph::{Graph, TensorId};
use tofu_models::{mlp, wresnet, MlpConfig, WResNetConfig};
use tofu_runtime::{
    gather_shards, resume_from_snapshot, run_with_elastic_recovery, run_with_options,
    CheckpointPolicy, ChurnPlan, ElasticPolicy, ElasticReport, RecoveryOptions, RunOptions,
    TransitionKind,
};
use tofu_tensor::Tensor;

fn bit_identical(a: &BTreeMap<TensorId, Tensor>, b: &BTreeMap<TensorId, Tensor>) -> bool {
    a.len() == b.len()
        && a.iter().all(|(t, va)| {
            b.get(t).is_some_and(|vb| {
                va.data().iter().map(|x| x.to_bits()).eq(vb.data().iter().map(|x| x.to_bits()))
            })
        })
}

/// The spec's baseline: an undisturbed run at the final width resumed from
/// the same snapshot cut the churned run last crossed (or from scratch when
/// no width change carried one).
fn baseline_values(
    report: &ElasticReport,
    full_feeds: &[(TensorId, Tensor)],
) -> BTreeMap<TensorId, Tensor> {
    let clean = RunOptions::default();
    match &report.snapshot {
        Some(snap) => resume_from_snapshot(&report.sharded, &[], &clean, snap)
            .expect("baseline resume")
            .values,
        None => {
            let mut sf = Vec::new();
            for (t, v) in full_feeds {
                sf.extend(report.sharded.scatter(*t, v).expect("scatter"));
            }
            run_with_options(&report.sharded, &sf, &clean).expect("baseline run").values
        }
    }
}

/// Every **original** tensor of the run, gathered to full shape. Which
/// *piece* (communication) tensors appear in `output.values` depends on the
/// barrier the run resumed from — a timing-dependent harvest — so cross-run
/// comparisons go through the original tensors, which are always complete.
fn gathered_originals(report: &ElasticReport) -> BTreeMap<TensorId, Tensor> {
    let mut out = BTreeMap::new();
    for (&t, shards) in &report.sharded.shards {
        if shards.iter().all(|s| report.output.values.contains_key(s)) {
            out.insert(
                t,
                gather_shards(&report.sharded, t, &report.output.values).expect("gather"),
            );
        }
    }
    out
}

struct Scenario {
    name: &'static str,
    graph: Graph,
    churn: ChurnPlan,
    /// Checkpoint cadence in original steps. Dense for the small MLPs so a
    /// late leave always strands barriers *after* its harvest for the next
    /// join to pause at; sparse for WResNet where each barrier clones a
    /// deep model's tensors.
    every: usize,
    /// Expected width ladder: every scenario must end at the width that
    /// matches the surviving fleet's capacity (largest feasible ≤ capacity).
    expect_widths: Vec<usize>,
}

fn kind_str(k: TransitionKind) -> &'static str {
    match k {
        TransitionKind::Shrink => "shrink",
        TransitionKind::Grow => "grow",
        TransitionKind::SpareJoin => "spare_join",
        TransitionKind::SpareLoss => "spare_loss",
    }
}

fn run_pass(
    s: &Scenario,
    full_feeds: &[(TensorId, Tensor)],
    caches: &mut SearchCaches,
) -> ElasticReport {
    let part = PartitionOptions { workers: 8, ..Default::default() };
    let opts = RunOptions {
        churn: s.churn.clone(),
        checkpoint: Some(CheckpointPolicy::every_original(s.every)),
        recv_timeout: Duration::from_secs(10),
        ..Default::default()
    };
    let recovery = RecoveryOptions {
        max_attempts: 1,
        backoff: Duration::ZERO,
        elastic: Some(ElasticPolicy::default()),
        ..Default::default()
    };
    run_with_elastic_recovery(&s.graph, full_feeds, &part, &opts, &recovery, caches)
        .unwrap_or_else(|e| panic!("{}: churn run failed: {e}", s.name))
}

fn main() {
    let mlp840 = || {
        mlp(&MlpConfig { batch: 840, dims: vec![32, 32], classes: 8, with_updates: true })
            .expect("mlp builds")
            .graph
    };
    // Batch 48 has no 5- or 7-way split: capacity 7 must run 6 wide.
    let mlp48 = || {
        mlp(&MlpConfig { batch: 48, dims: vec![32, 32], classes: 8, with_updates: true })
            .expect("mlp builds")
            .graph
    };
    // A small WResNet whose only feasible widths are the powers of two that
    // divide batch 8: losing one of 8 devices drops the run to 4 with three
    // survivors idling as spares.
    let wres = || {
        wresnet(&WResNetConfig {
            layers: 50,
            width: 1,
            batch: 8,
            image: 16,
            classes: 8,
            with_updates: true,
        })
        .expect("wresnet builds")
        .graph
    };

    let wres_graph = wres();
    let wres_every = (wres_graph.num_nodes() / 6).max(1);
    let scenarios = vec![
        Scenario {
            name: "mlp840 leave",
            graph: mlp840(),
            churn: ChurnPlan::none().with_leave(3, 40),
            every: 2,
            expect_widths: vec![8, 7],
        },
        Scenario {
            name: "mlp840 leave+rejoin",
            graph: mlp840(),
            churn: ChurnPlan::none().with_leave(3, 40).with_join(3, 1),
            every: 2,
            expect_widths: vec![8, 7, 8],
        },
        Scenario {
            name: "mlp840 double churn",
            graph: mlp840(),
            churn: ChurnPlan::none()
                .with_leave(1, 15)
                .with_join(1, 1)
                .with_leave(5, 40)
                .with_join(5, 2),
            every: 2,
            expect_widths: vec![8, 7, 8, 7, 8],
        },
        Scenario {
            name: "mlp840 2 leaves 2 rejoins",
            graph: mlp840(),
            churn: ChurnPlan::none()
                .with_leave(0, 10)
                .with_leave(4, 25)
                .with_join(0, 2)
                .with_join(4, 3),
            every: 2,
            expect_widths: vec![8, 7, 6, 7, 8],
        },
        Scenario {
            name: "mlp48 step-down+rejoin",
            graph: mlp48(),
            churn: ChurnPlan::none().with_leave(2, 30).with_join(2, 1),
            every: 2,
            expect_widths: vec![8, 6, 8],
        },
        Scenario {
            name: "wresnet leave+rejoin",
            graph: wres_graph,
            churn: ChurnPlan::none().with_leave(5, 20).with_join(5, 1),
            every: wres_every,
            expect_widths: vec![8, 4, 8],
        },
    ];

    println!(
        "{:<28} {:<6} {:>14} {:>10} {:>10} {:>12} {:>10} {:>6}",
        "scenario", "pass", "ladder", "detect µs", "replan µs", "reshard µs", "resume µs", "exact"
    );
    println!("{}", "-".repeat(104));

    let mut rows: Vec<Json> = Vec::new();
    let mut all_exact = true;
    let mut grows_total = 0usize;
    let mut cold_replan = Duration::ZERO;
    let mut warm_replan = Duration::ZERO;
    for s in &scenarios {
        let full_feeds = feeds(&s.graph);
        let mut caches = SearchCaches::default();
        let cold = run_pass(s, &full_feeds, &mut caches);
        let warm = run_pass(s, &full_feeds, &mut caches);

        // The two passes must replay the identical ladder.
        assert_eq!(cold.widths, warm.widths, "{}: passes diverged on widths", s.name);
        assert_eq!(cold.lost, warm.lost, "{}: passes diverged on losses", s.name);
        assert_eq!(cold.joined, warm.joined, "{}: passes diverged on joins", s.name);
        // When both passes harvested the same checkpoint cuts, the resume
        // chains are identical and the outputs must be bit-identical. When
        // the (timing-dependent) harvest picked different cuts, the width
        // changes happen at different barriers, so the floating-point
        // reduction order differs and cross-pass bits are not comparable —
        // each pass is still held to its own undisturbed baseline below.
        let cold_cuts: Vec<Option<usize>> = cold.transitions.iter().map(|t| t.at_ckpt).collect();
        let warm_cuts: Vec<Option<usize>> = warm.transitions.iter().map(|t| t.at_ckpt).collect();
        if cold_cuts == warm_cuts {
            let cold_originals = gathered_originals(&cold);
            assert!(!cold_originals.is_empty(), "{}: no original tensors gathered", s.name);
            assert!(
                bit_identical(&cold_originals, &gathered_originals(&warm)),
                "{}: passes harvested the same cuts {cold_cuts:?} but outputs differ",
                s.name
            );
        } else {
            println!(
                "{:<28} (cuts {cold_cuts:?} vs {warm_cuts:?}: cross-pass bits not comparable)",
                s.name
            );
        }
        assert_eq!(cold.widths, s.expect_widths, "{}: unexpected ladder", s.name);
        // In the warm pass every replanned width is a plan-cache hit.
        assert!(
            warm.transitions.iter().filter(|t| t.replan.is_some()).all(|t| t.replan_warm),
            "{}: warm pass hit a cold replan",
            s.name
        );

        grows_total +=
            cold.transitions.iter().filter(|t| t.kind == TransitionKind::Grow).count();
        for (pass, report) in [("cold", &cold), ("warm", &warm)] {
            let exact = bit_identical(&report.output.values, &baseline_values(report, &full_feeds));
            all_exact &= exact;
            let mut detect = Duration::ZERO;
            let mut replan = Duration::ZERO;
            let mut reshard = Duration::ZERO;
            let mut resume = Duration::ZERO;
            let mut transitions: Vec<Json> = Vec::new();
            for t in &report.transitions {
                detect += t.detection.unwrap_or(Duration::ZERO);
                replan += t.replan.unwrap_or(Duration::ZERO);
                reshard += t.reshard.unwrap_or(Duration::ZERO);
                resume += t.resume_wall.unwrap_or(Duration::ZERO);
                if let Some(r) = t.replan {
                    if pass == "cold" && !t.replan_warm {
                        cold_replan += r;
                    }
                    if pass == "warm" {
                        warm_replan += r;
                    }
                }
                transitions.push(Json::obj(vec![
                    ("kind", Json::from(kind_str(t.kind))),
                    ("device", Json::from(t.device)),
                    ("from_width", Json::from(t.from_width)),
                    ("to_width", Json::from(t.to_width)),
                    (
                        "at_ckpt",
                        t.at_ckpt.map(Json::from).unwrap_or(Json::Null),
                    ),
                    (
                        "detect_us",
                        t.detection
                            .map(|d| Json::from(d.as_micros() as f64))
                            .unwrap_or(Json::Null),
                    ),
                    (
                        "replan_us",
                        t.replan.map(|d| Json::from(d.as_micros() as f64)).unwrap_or(Json::Null),
                    ),
                    ("replan_warm", Json::Bool(t.replan_warm)),
                    (
                        "reshard_us",
                        t.reshard.map(|d| Json::from(d.as_micros() as f64)).unwrap_or(Json::Null),
                    ),
                    ("reshard_bytes", Json::from(t.reshard_bytes as f64)),
                    (
                        "resume_us",
                        t.resume_wall
                            .map(|d| Json::from(d.as_micros() as f64))
                            .unwrap_or(Json::Null),
                    ),
                ]));
            }
            let ladder =
                report.widths.iter().map(|w| w.to_string()).collect::<Vec<_>>().join("→");
            println!(
                "{:<28} {:<6} {:>14} {:>10} {:>10} {:>12} {:>10} {:>6}",
                s.name,
                pass,
                ladder,
                detect.as_micros(),
                replan.as_micros(),
                reshard.as_micros(),
                resume.as_micros(),
                exact
            );
            rows.push(Json::obj(vec![
                ("scenario", Json::from(s.name)),
                ("pass", Json::from(pass)),
                ("widths", Json::Arr(report.widths.iter().map(|&w| Json::from(w)).collect())),
                ("final_width", Json::from(*report.widths.last().unwrap())),
                ("lost", Json::Arr(report.lost.iter().map(|&d| Json::from(d)).collect())),
                ("joined", Json::Arr(report.joined.iter().map(|&d| Json::from(d)).collect())),
                ("spares", Json::Arr(report.spares.iter().map(|&d| Json::from(d)).collect())),
                ("attempts", Json::from(report.attempts)),
                ("detect_us", Json::from(detect.as_micros() as f64)),
                ("replan_us", Json::from(replan.as_micros() as f64)),
                ("reshard_us", Json::from(reshard.as_micros() as f64)),
                ("resume_us", Json::from(resume.as_micros() as f64)),
                ("transitions", Json::Arr(transitions)),
                ("exact", Json::Bool(exact)),
            ]));
        }
    }

    let warm_faster = warm_replan < cold_replan;
    println!(
        "({} scenarios, all bit-identical: {all_exact}, grow events: {grows_total}, \
         replans cold {} µs vs warm {} µs)",
        scenarios.len(),
        cold_replan.as_micros(),
        warm_replan.as_micros()
    );

    let doc = bench_report(
        "fleet_churn",
        vec![
            ("workers", Json::from(8usize)),
            ("scenarios", Json::from(scenarios.len())),
            ("grow_events", Json::from(grows_total)),
            ("cold_replan_us", Json::from(cold_replan.as_micros() as f64)),
            ("warm_replan_us", Json::from(warm_replan.as_micros() as f64)),
            ("warm_replans_faster", Json::Bool(warm_faster)),
            ("all_exact", Json::Bool(all_exact)),
        ],
        rows,
    );
    write_report("BENCH_churn.json", &doc);
    if !all_exact || grows_total == 0 || !warm_faster {
        eprintln!(
            "FAIL: exact={all_exact} grows={grows_total} warm_faster={warm_faster}"
        );
        std::process::exit(1);
    }
}
