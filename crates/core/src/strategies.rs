//! Instantiating TDL-discovered strategies at concrete shapes.
//!
//! [`tofu_tdl::discover_strategies`] yields symbolic strategies; here they
//! are bound to a node's concrete (possibly already-scaled-by-recursion)
//! shapes: halos become element counts and the variable extents needed by
//! the cost model are resolved via [`tofu_tdl::bind_extents`].

use tofu_graph::{Graph, NodeId};
use tofu_tensor::Shape;

use tofu_tdl::{bind_extents, discover_strategies, InputRequirement, OutputPartition};

use crate::error::CoreError;
use crate::spec::{ConcreteOut, ConcreteReq};
use crate::Result;

/// A view of per-tensor shapes that overrides the graph's declared shapes.
///
/// The recursive partitioner scales tensor shapes step by step (each step
/// halves every tensor); the DP always reads shapes through this view.
#[derive(Debug, Clone)]
pub struct ShapeView {
    shapes: Vec<Shape>,
}

impl ShapeView {
    /// A view equal to the graph's declared shapes.
    pub fn from_graph(g: &Graph) -> ShapeView {
        ShapeView { shapes: g.tensor_ids().map(|t| g.tensor(t).shape.clone()).collect() }
    }

    /// Shape of a tensor under this view.
    pub fn shape(&self, t: tofu_graph::TensorId) -> &Shape {
        &self.shapes[t.0]
    }

    /// Replaces a tensor's shape.
    pub fn set(&mut self, t: tofu_graph::TensorId, shape: Shape) {
        self.shapes[t.0] = shape;
    }

    /// Appends an extra (pseudo-input) tensor's shape, returning nothing;
    /// the new tensor's id is the previous length.
    pub fn push(&mut self, shape: Shape) {
        self.shapes.push(shape);
    }

    /// Number of tensors covered.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// True when the view covers no tensors.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }
}

/// One fully concrete basic strategy of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStrategy {
    /// Strategy identifier from discovery (e.g. `"split:b"`).
    pub id: String,
    /// The TDL index variable this strategy partitions (needed by the
    /// partitioned-graph generator to narrow variable ranges per worker).
    pub var: usize,
    /// Concrete extent of that variable at the analyzed shapes (used for
    /// divisibility feasibility checks).
    pub var_extent: u64,
    /// Output disposition.
    pub out: ConcreteOut,
    /// The combining reducer for Case-2 strategies.
    pub reducer: Option<tofu_tdl::Reducer>,
    /// One concrete requirement per node input.
    pub inputs: Vec<ConcreteReq>,
}

/// Computes the concrete strategies of a node at the given shapes.
///
/// # Errors
///
/// [`CoreError::NotDescribable`] when the node's operator has no TDL
/// description — such operators cannot be partitioned (§9).
pub fn node_strategies(g: &Graph, node: NodeId, view: &ShapeView) -> Result<Vec<NodeStrategy>> {
    let n = g.node(node);
    let def = tofu_graph::lookup(&n.op)?;
    let in_shapes: Vec<Shape> = n.inputs.iter().map(|&t| view.shape(t).clone()).collect();
    let tdl_fn = def.tdl.ok_or_else(|| CoreError::NotDescribable {
        node: n.name.clone(),
        op: n.op.clone(),
    })?;
    let desc = tdl_fn(&in_shapes, &n.attrs).ok_or_else(|| CoreError::NotDescribable {
        node: n.name.clone(),
        op: n.op.clone(),
    })?;

    let out_dims = view.shape(n.output).dims().to_vec();
    let in_dims: Vec<Vec<usize>> = in_shapes.iter().map(|s| s.dims().to_vec()).collect();
    let extents = bind_extents(&desc, &out_dims, &in_dims)?;
    let eval = |sym: usize| extents.get(sym).copied().unwrap_or(1) as f64;

    let symbolic = discover_strategies(&desc)?;
    let mut out = Vec::with_capacity(symbolic.len());
    for s in symbolic {
        let (concrete_out, reducer) = match s.output {
            OutputPartition::Split { dim } => (ConcreteOut::Split(dim), None),
            OutputPartition::Reduce { reducer } => (ConcreteOut::Reduce, Some(reducer)),
        };
        let inputs = s
            .inputs
            .iter()
            .map(|req| match req {
                InputRequirement::Unused => ConcreteReq::Unused,
                InputRequirement::Replicated => ConcreteReq::Replicated,
                InputRequirement::Split { dim, halo } => ConcreteReq::Split {
                    dim: *dim,
                    halo: halo.eval(&eval).max(0.0),
                },
            })
            .collect();
        let var_extent = extents.get(s.var).copied().unwrap_or(1);
        out.push(NodeStrategy { id: s.id, var: s.var, var_extent, out: concrete_out, reducer, inputs });
    }
    Ok(out)
}

/// The memoization signature of [`node_strategies`]: everything strategy
/// enumeration reads — operator kind, canonical attribute string, and the
/// input/output shapes under the view. Two nodes with equal signatures get
/// byte-identical strategy lists, which is what makes the strategy cache
/// answer-preserving.
pub fn strategy_signature(g: &Graph, node: NodeId, view: &ShapeView) -> String {
    use std::fmt::Write;
    let n = g.node(node);
    let mut s = String::with_capacity(64);
    s.push_str(&n.op);
    let _ = write!(s, "|{}", n.attrs);
    for &t in &n.inputs {
        let _ = write!(s, "|{:?}", view.shape(t).dims());
    }
    let _ = write!(s, "|>{:?}", view.shape(n.output).dims());
    s
}

/// True when a strategy is usable for a `ways`-way step at these shapes: the
/// split dimensions it relies on must divide evenly.
pub fn strategy_feasible(
    strategy: &NodeStrategy,
    out_shape: &Shape,
    ways: usize,
) -> bool {
    match strategy.out {
        ConcreteOut::Split(d) => {
            d < out_shape.rank() && out_shape.dim(d).is_multiple_of(ways) && out_shape.dim(d) >= ways
        }
        // A reduce strategy splits the reduction domain, whose extent must
        // divide evenly (e.g. a 3-channel stem convolution cannot reduce
        // over input channels across 2 workers).
        ConcreteOut::Reduce => {
            strategy.var_extent.is_multiple_of(ways as u64) && strategy.var_extent >= ways as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_graph::Attrs;

    #[test]
    fn conv1d_strategies_concretize_halo() {
        let mut g = Graph::new();
        let data = g.add_input("data", Shape::new(vec![4, 3, 10]));
        let filt = g.add_weight("filt", Shape::new(vec![3, 8, 3]));
        let out = g.add_op("conv1d", "c", &[data, filt], Attrs::new()).unwrap();
        let view = ShapeView::from_graph(&g);
        assert_eq!(view.shape(out).dims(), &[4, 8, 8]);
        let node = g.producer(out).unwrap();
        let s = node_strategies(&g, node, &view).unwrap();
        assert_eq!(s.len(), 5);
        // split:x has a halo equal to the filter window (3 elements).
        let x = s.iter().find(|st| st.id == "split:x").unwrap();
        match &x.inputs[0] {
            ConcreteReq::Split { dim: 2, halo } => assert!((halo - 3.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shape_view_overrides() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![8, 8]));
        let mut view = ShapeView::from_graph(&g);
        view.set(x, Shape::new(vec![4, 8]));
        assert_eq!(view.shape(x).dims(), &[4, 8]);
        assert_eq!(view.len(), 1);
        assert!(!view.is_empty());
    }

    #[test]
    fn feasibility_checks_divisibility() {
        let s = NodeStrategy {
            id: "split:d0".into(),
            var: 0,
            var_extent: 8,
            out: ConcreteOut::Split(0),
            reducer: None,
            inputs: vec![],
        };
        assert!(strategy_feasible(&s, &Shape::new(vec![8, 3]), 2));
        assert!(!strategy_feasible(&s, &Shape::new(vec![9, 3]), 2));
        let r = NodeStrategy {
            id: "reduce:k".into(),
            var: 2,
            var_extent: 8,
            out: ConcreteOut::Reduce,
            reducer: Some(tofu_tdl::Reducer::Sum),
            inputs: vec![],
        };
        let odd = NodeStrategy { var_extent: 3, ..r.clone() };
        assert!(!strategy_feasible(&odd, &Shape::new(vec![9, 3]), 2));
        assert!(strategy_feasible(&r, &Shape::new(vec![9, 3]), 2));
    }

    #[test]
    fn non_describable_is_reported() {
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new(vec![2, 3]));
        let b = g.add_input("b", Shape::new(vec![2, 3]));
        let out = g
            .add_op("concat", "cat", &[a, b], Attrs::new().with_int("axis", 0))
            .unwrap();
        let node = g.producer(out).unwrap();
        let view = ShapeView::from_graph(&g);
        let err = node_strategies(&g, node, &view).unwrap_err();
        assert!(matches!(err, CoreError::NotDescribable { .. }));
    }

    #[test]
    fn scaled_view_scales_halo_costs_not_structure() {
        // Shrinking the batch does not change the strategy list.
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new(vec![8, 6]));
        let b = g.add_weight("b", Shape::new(vec![6, 4]));
        let out = g.add_op("matmul", "mm", &[a, b], Attrs::new()).unwrap();
        let node = g.producer(out).unwrap();
        let mut view = ShapeView::from_graph(&g);
        view.set(a, Shape::new(vec![4, 6]));
        view.set(out, Shape::new(vec![4, 4]));
        let s = node_strategies(&g, node, &view).unwrap();
        assert_eq!(s.len(), 3);
    }
}
