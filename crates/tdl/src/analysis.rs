//! Region analysis: symbolic abstract interpretation of TDL bodies (§4.2).
//!
//! Given an assignment of symbolic intervals to index variables, walking the
//! lambda body yields, for every input tensor, the region (one interval per
//! dimension) that the computation reads. Running the analysis twice — once
//! with an index variable restricted to the lower half of its range, once to
//! the upper half — reveals what each of two workers must fetch, which is how
//! [`crate::strategy`] discovers partition strategies.

use crate::expr::{AffineIndex, IndexExpr, TdlDesc, TdlError, VarId};
use crate::interval::SymInterval;
use crate::Result;

/// The access footprint of one dimension of one input tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum DimAccess {
    /// The entire dimension is read (a `:` slice, e.g. inside an opaque
    /// function argument).
    Full,
    /// A symbolic sub-range is read.
    Interval(SymInterval),
}

impl DimAccess {
    /// Unions two footprints.
    pub fn union(&self, other: &DimAccess) -> DimAccess {
        match (self, other) {
            (DimAccess::Full, _) | (_, DimAccess::Full) => DimAccess::Full,
            (DimAccess::Interval(a), DimAccess::Interval(b)) => DimAccess::Interval(a.hull(b)),
        }
    }

    /// Approximate equality of footprints.
    pub fn approx_eq(&self, other: &DimAccess) -> bool {
        match (self, other) {
            (DimAccess::Full, DimAccess::Full) => true,
            (DimAccess::Interval(a), DimAccess::Interval(b)) => a.approx_eq(b),
            _ => false,
        }
    }
}

/// The access footprint of one input tensor: one [`DimAccess`] per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Region(pub Vec<DimAccess>);

impl Region {
    fn union_in_place(&mut self, other: &Region) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = a.union(b);
        }
    }
}

/// Evaluates an affine index expression under an interval assignment.
fn eval_affine(index: &AffineIndex, binding: &[SymInterval]) -> SymInterval {
    let mut acc = SymInterval::point(index.constant);
    for &(v, c) in &index.terms {
        acc = acc.add(&binding[v].scale(c));
    }
    acc
}

/// Computes the per-input access regions of `desc` under the given interval
/// assignment for its index variables.
///
/// Returns one entry per declared input; `None` when the input is never
/// accessed by the body.
///
/// # Examples
///
/// ```
/// use tofu_tdl::{access_regions, DescBuilder, SymInterval};
///
/// // shift_two from the paper: B = lambda i: A[i + 2].
/// let mut b = DescBuilder::new("shift_two", &[1]);
/// let i = b.output_var("i");
/// let body = b.input(0, &[i.at() + 2]);
/// let desc = b.build(body).unwrap();
/// let regions = access_regions(&desc, &[SymInterval::lower_half_var(0)]).unwrap();
/// let region = regions[0].as_ref().unwrap();
/// assert_eq!(region.0.len(), 1);
/// ```
pub fn access_regions(desc: &TdlDesc, binding: &[SymInterval]) -> Result<Vec<Option<Region>>> {
    if binding.len() != desc.vars().len() {
        return Err(TdlError::Invalid(format!(
            "{} interval bindings for {} variables",
            binding.len(),
            desc.vars().len()
        )));
    }
    let mut regions: Vec<Option<Region>> = vec![None; desc.num_inputs()];
    let mut walk_err = None;
    desc.body().for_each_access(&mut |input, indices| {
        if walk_err.is_some() {
            return;
        }
        let mut dims = Vec::with_capacity(indices.len());
        for ie in indices {
            match ie {
                IndexExpr::Full => dims.push(DimAccess::Full),
                IndexExpr::Affine(a) => {
                    dims.push(DimAccess::Interval(eval_affine(a, binding)));
                }
            }
        }
        let region = Region(dims);
        match &mut regions[input] {
            Some(existing) => existing.union_in_place(&region),
            slot @ None => *slot = Some(region),
        }
    });
    if let Some(e) = walk_err.take() {
        return Err(e);
    }
    Ok(regions)
}

/// Binds a concrete extent to every index variable of `desc` from the
/// operator's concrete output and input shapes.
///
/// Output variable `i` gets the output extent `output_dims[i]`. A reduction
/// variable's extent is recovered from an input dimension it indexes: first
/// by an identity occurrence (`filters[ci, co, dx]` ties `dx` to
/// `filters.shape[2]`), then by solving a single-unknown affine occurrence.
///
/// Returns one extent per variable, or [`TdlError::UnresolvedExtent`].
pub fn bind_extents(
    desc: &TdlDesc,
    output_dims: &[usize],
    input_dims: &[Vec<usize>],
) -> Result<Vec<u64>> {
    if output_dims.len() != desc.output_rank() {
        return Err(TdlError::ShapeMismatch(format!(
            "output rank {} but {} extents given",
            desc.output_rank(),
            output_dims.len()
        )));
    }
    if input_dims.len() != desc.num_inputs() {
        return Err(TdlError::ShapeMismatch(format!(
            "{} inputs but {} shapes given",
            desc.num_inputs(),
            input_dims.len()
        )));
    }
    for (i, dims) in input_dims.iter().enumerate() {
        if dims.len() != desc.input_ranks()[i] {
            return Err(TdlError::ShapeMismatch(format!(
                "input {i} declared rank {} but shape has rank {}",
                desc.input_ranks()[i],
                dims.len()
            )));
        }
    }

    let n = desc.vars().len();
    let mut extents: Vec<Option<u64>> = vec![None; n];
    for (i, &d) in output_dims.iter().enumerate() {
        extents[i] = Some(d as u64);
    }
    // Pass 0: statically hinted extents (pooling windows et al.).
    for (v, info) in desc.vars().iter().enumerate() {
        if extents[v].is_none() {
            extents[v] = info.extent_hint;
        }
    }

    // Collect every (input, dim, index-expression) occurrence once.
    let mut occurrences: Vec<(usize, usize, AffineIndex)> = Vec::new();
    desc.body().for_each_access(&mut |input, indices| {
        for (dim, ie) in indices.iter().enumerate() {
            if let IndexExpr::Affine(a) = ie {
                occurrences.push((input, dim, a.clone()));
            }
        }
    });

    // Pass 1: identity occurrences pin extents directly.
    for (input, dim, a) in &occurrences {
        if a.constant == 0.0 && a.terms.len() == 1 && a.terms[0].1 == 1.0 {
            let v = a.terms[0].0;
            let extent = input_dims[*input][*dim] as u64;
            if extents[v].is_none() {
                extents[v] = Some(extent);
            }
        }
    }

    // Pass 2: solve occurrences with exactly one unknown. The maximum index
    // reached is Σ coeff·(extent-1) + constant, which must equal
    // input_extent - 1 when the access spans the dimension exactly.
    let mut progress = true;
    while progress && extents.iter().any(Option::is_none) {
        progress = false;
        for (input, dim, a) in &occurrences {
            let unknowns: Vec<VarId> =
                a.vars().filter(|&v| extents[v].is_none()).collect();
            if unknowns.len() != 1 {
                continue;
            }
            let v = unknowns[0];
            let cv = a.coeff(v);
            if cv <= 0.0 {
                continue;
            }
            let input_extent = input_dims[*input][*dim] as f64;
            let mut known_max = a.constant;
            for &(tv, c) in &a.terms {
                if tv != v {
                    let e = extents[tv].expect("known") as f64;
                    known_max += c.max(0.0) * (e - 1.0);
                }
            }
            // cv * (E_v - 1) + known_max = input_extent - 1.
            let candidate = (input_extent - 1.0 - known_max) / cv + 1.0;
            let rounded = candidate.round();
            if rounded >= 1.0 && (candidate - rounded).abs() < 1e-6 {
                extents[v] = Some(rounded as u64);
                progress = true;
            }
        }
    }

    extents
        .into_iter()
        .enumerate()
        .map(|(v, e)| e.ok_or(TdlError::UnresolvedExtent { var: v }))
        .collect()
}

/// Evaluates the number of elements a [`DimAccess`] covers under concrete
/// per-variable extents, clamped to the dimension's extent.
pub fn dim_access_len(
    access: &DimAccess,
    extent_of_sym: &impl Fn(usize) -> f64,
    dim_extent: f64,
) -> f64 {
    match access {
        DimAccess::Full => dim_extent,
        DimAccess::Interval(iv) => {
            let lo = iv.lo().eval(extent_of_sym).max(0.0);
            let hi = iv.hi().eval(extent_of_sym).min(dim_extent);
            (hi - lo).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DescBuilder;
    use crate::expr::Reducer;

    fn conv1d_desc() -> TdlDesc {
        let mut b = DescBuilder::new("conv1d", &[3, 3]);
        let (bb, co, x) = (b.output_var("b"), b.output_var("co"), b.output_var("x"));
        let (ci, dx) = (b.reduce_var("ci"), b.reduce_var("dx"));
        let body = b.input(0, &[bb.at(), ci.at(), x.at() + dx.at()])
            * b.input(1, &[ci.at(), co.at(), dx.at()]);
        b.build_reduce(Reducer::Sum, body).unwrap()
    }

    fn full_binding(desc: &TdlDesc) -> Vec<SymInterval> {
        (0..desc.vars().len()).map(SymInterval::full_var).collect()
    }

    #[test]
    fn conv1d_full_regions() {
        let desc = conv1d_desc();
        let regions = access_regions(&desc, &full_binding(&desc)).unwrap();
        // data region dim 2 covers [0, X_x + X_dx] (x + dx).
        let data = regions[0].as_ref().unwrap();
        match &data.0[2] {
            DimAccess::Interval(iv) => {
                assert_eq!(iv.hi().coeff(2), 1.0); // var x
                assert_eq!(iv.hi().coeff(4), 1.0); // var dx
            }
            DimAccess::Full => panic!("expected interval"),
        }
    }

    #[test]
    fn conv1d_batch_split_halves_data_only() {
        let desc = conv1d_desc();
        let mut binding = full_binding(&desc);
        binding[0] = SymInterval::lower_half_var(0); // split b
        let regions = access_regions(&desc, &binding).unwrap();
        let data = regions[0].as_ref().unwrap();
        // data dim 0 is halved.
        match &data.0[0] {
            DimAccess::Interval(iv) => assert_eq!(iv.hi().coeff(0), 0.5),
            _ => panic!(),
        }
        // filters untouched: full along every dim.
        let filters = regions[1].as_ref().unwrap();
        match &filters.0[0] {
            DimAccess::Interval(iv) => assert_eq!(iv.hi().coeff(3), 1.0),
            _ => panic!(),
        }
    }

    #[test]
    fn unaccessed_input_yields_none() {
        let mut b = DescBuilder::new("first", &[1, 1]);
        let i = b.output_var("i");
        let body = b.input(0, &[i.at()]);
        let desc = b.build(body).unwrap();
        let regions = access_regions(&desc, &[SymInterval::full_var(0)]).unwrap();
        assert!(regions[0].is_some());
        assert!(regions[1].is_none());
    }

    #[test]
    fn binding_length_is_checked() {
        let desc = conv1d_desc();
        assert!(access_regions(&desc, &[]).is_err());
    }

    #[test]
    fn bind_extents_conv1d() {
        let desc = conv1d_desc();
        // output (4, 8, 6), data (4, 3, 7), filters (3, 8, 2): x+dx spans 7.
        let extents =
            bind_extents(&desc, &[4, 8, 6], &[vec![4, 3, 7], vec![3, 8, 2]]).unwrap();
        assert_eq!(extents, vec![4, 8, 6, 3, 2]);
    }

    #[test]
    fn bind_extents_matmul_inner_dim() {
        let mut b = DescBuilder::new("matmul", &[2, 2]);
        let (i, j) = (b.output_var("i"), b.output_var("j"));
        let k = b.reduce_var("k");
        let body = b.input(0, &[i.at(), k.at()]) * b.input(1, &[k.at(), j.at()]);
        let desc = b.build_reduce(Reducer::Sum, body).unwrap();
        let extents = bind_extents(&desc, &[2, 5], &[vec![2, 7], vec![7, 5]]).unwrap();
        assert_eq!(extents, vec![2, 5, 7]);
    }

    #[test]
    fn bind_extents_validates_ranks() {
        let desc = conv1d_desc();
        assert!(bind_extents(&desc, &[4, 8], &[vec![4, 3, 7], vec![3, 8, 2]]).is_err());
        assert!(bind_extents(&desc, &[4, 8, 6], &[vec![4, 3], vec![3, 8, 2]]).is_err());
        assert!(bind_extents(&desc, &[4, 8, 6], &[vec![4, 3, 7]]).is_err());
    }

    #[test]
    fn dim_access_len_clamps() {
        let ext = |_s: usize| 8.0;
        let full = DimAccess::Full;
        assert_eq!(dim_access_len(&full, &ext, 8.0), 8.0);
        // [2, X/2 + 2] with X = 8 -> [2, 6] -> 4 elements.
        let iv = DimAccess::Interval(SymInterval::lower_half_var(0).offset(2.0));
        assert_eq!(dim_access_len(&iv, &ext, 8.0), 4.0);
        // Clamped at the top: [2, X + 2] -> [2, 8] -> 6 elements.
        let iv = DimAccess::Interval(SymInterval::full_var(0).offset(2.0));
        assert_eq!(dim_access_len(&iv, &ext, 8.0), 6.0);
    }
}
