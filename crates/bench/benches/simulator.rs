//! Criterion micro-benchmarks of the evaluation substrate: partitioned-graph
//! generation and the discrete-event simulation (the per-configuration cost
//! of regenerating Figs. 8-10).

use criterion::{criterion_group, criterion_main, Criterion};

use tofu_core::recursive::{partition, PartitionOptions};
use tofu_core::{generate, GenOptions};
use tofu_models::{mlp, MlpConfig};
use tofu_sim::{simulate, Machine};

fn bench_generate(c: &mut Criterion) {
    let model = mlp(&MlpConfig {
        batch: 64,
        dims: vec![256, 256, 256],
        classes: 32,
        with_updates: true,
    })
    .unwrap();
    let plan = partition(&model.graph, &PartitionOptions::default()).unwrap();
    c.bench_function("sim/generate_8_workers", |b| {
        b.iter(|| generate(&model.graph, &plan, &GenOptions::default()).unwrap())
    });
}

fn bench_event_sim(c: &mut Criterion) {
    let model = mlp(&MlpConfig {
        batch: 64,
        dims: vec![256, 256, 256],
        classes: 32,
        with_updates: true,
    })
    .unwrap();
    let plan = partition(&model.graph, &PartitionOptions::default()).unwrap();
    let sharded = generate(&model.graph, &plan, &GenOptions::default()).unwrap();
    let machine = Machine::p2_8xlarge();
    c.bench_function("sim/event_simulation", |b| {
        b.iter(|| simulate(&sharded.graph, &sharded.device_of_node, &machine, false))
    });
}

fn bench_memory_plan(c: &mut Criterion) {
    let model = mlp(&MlpConfig {
        batch: 64,
        dims: vec![256, 256, 256],
        classes: 32,
        with_updates: true,
    })
    .unwrap();
    let plan = partition(&model.graph, &PartitionOptions::default()).unwrap();
    let sharded = generate(&model.graph, &plan, &GenOptions::default()).unwrap();
    c.bench_function("sim/per_device_memory", |b| {
        b.iter(|| {
            tofu_sim::per_device_memory(&sharded.graph, &sharded.device_of_node, 8, true, 1.0)
        })
    });
}

criterion_group!(benches, bench_generate, bench_event_sim, bench_memory_plan);
criterion_main!(benches);
