#!/usr/bin/env bash
# The repo's CI gate: lint with warnings-as-errors, then the full test suite.
# Usage: scripts/check.sh  (optionally TOFU_SEED=n for a shifted random stream)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test --workspace -q
