//! Partitioned-graph generation (§6).
//!
//! Expands the original graph into a `k`-worker graph following a
//! [`PartitionPlan`]: each operator becomes `k` device-tagged instances;
//! remote input regions are gathered by fused [`multi_fetch`] nodes (the
//! paper's MultiFetch kernel, which also materializes convolution padding as
//! zero fill); Case-2 partial outputs are combined by a spread reduction
//! (every worker assembles and reduces only its own output shard); and extra
//! control dependencies re-serialize each worker's sub-schedule so the
//! memory planner keeps reusing buffers (Fig. 7).
//!
//! The per-worker input regions are *derived from the TDL descriptions*: a
//! worker's range for every index variable is narrowed step by step
//! according to the chosen strategies, and evaluating the description's
//! affine accesses over those ranges yields exactly the regions to fetch —
//! halos, padding and strides included.
//!
//! [`multi_fetch`]: tofu_graph::ops::data

use std::collections::BTreeMap;

use tofu_graph::{Attrs, Graph, NodeId, NodeTags, TensorId, TensorKind};
use tofu_tdl::{bind_extents, IndexExpr, Reducer, TdlDesc};
use tofu_tensor::{Shape, Tensor};

use crate::dp::NodeChoice;
use crate::error::CoreError;
use crate::recursive::PartitionPlan;
use crate::spec::ConcreteOut;
use crate::Result;

/// A half-open block `[lo, hi)` per dimension, in element coordinates of the
/// original tensor. May extend outside the tensor for materialized padding.
pub type Region = Vec<(i64, i64)>;

/// Options for graph generation.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Insert the §6 control dependencies that mirror the original
    /// dependencies within each worker (Fig. 7). Turning this off models the
    /// naive generation whose memory planner cannot reuse buffers.
    pub control_deps: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { control_deps: true }
    }
}

/// The generated multi-worker graph plus the bookkeeping needed to feed,
/// validate and simulate it.
#[derive(Debug)]
pub struct ShardedGraph {
    /// The per-worker expanded graph.
    pub graph: Graph,
    /// Worker count.
    pub workers: usize,
    /// Per original tensor: its per-worker shard tensors in the new graph.
    pub shards: BTreeMap<TensorId, Vec<TensorId>>,
    /// Per original tensor: the per-worker shard regions (the final grid
    /// tiling; workers replicated at some step share overlapping regions).
    pub regions: BTreeMap<TensorId, Vec<Region>>,
    /// Device executing each new node.
    pub device_of_node: Vec<usize>,
    /// Device owning each new tensor (None for nothing in practice).
    pub device_of_tensor: Vec<Option<usize>>,
    /// For each generated node, the original node it expands. Every original
    /// node's expansion (fetch/compute/gather/reduce across all workers) is
    /// emitted contiguously, so for any worker the generated nodes whose
    /// origin precedes original node `n` form a prefix of that worker's
    /// schedule — the property plan-independent checkpoint barriers rely on.
    pub origin_of_node: Vec<NodeId>,
    /// Whether sharded execution is numerically exact. Strategies that split
    /// the spatial variables of strided *backward* convolutions (or of
    /// global pooling) change kernel semantics in ways the generator does
    /// not compensate; such graphs are still structurally correct for the
    /// simulator but are excluded from numeric validation.
    pub exact: bool,
}

/// One piece of a `multi_fetch` node: input `i` contributes the block of
/// `len` elements starting at `src_begin` (source coordinates), landing at
/// `dst_begin` of the fetch output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchPiece {
    /// Start of the copied block inside the source tensor.
    pub src_begin: Vec<i64>,
    /// Start of the block inside the fetch output.
    pub dst_begin: Vec<i64>,
    /// Block extent per dimension.
    pub len: Vec<i64>,
}

impl FetchPiece {
    /// Bytes the piece transfers (f32 elements).
    pub fn bytes(&self) -> u64 {
        self.len.iter().product::<i64>().max(0) as u64 * 4
    }
}

/// Decodes a `multi_fetch` node's piece list (one [`FetchPiece`] per input,
/// in input order). Returns `None` for any other operator.
pub fn fetch_pieces(g: &Graph, id: NodeId) -> Option<Vec<FetchPiece>> {
    let node = g.node(id);
    if node.op != "multi_fetch" {
        return None;
    }
    let rank = node.attrs.ints("out_dims")?.len();
    let pieces = node.attrs.ints("pieces")?;
    let mut out = Vec::with_capacity(node.inputs.len());
    for i in 0..node.inputs.len() {
        let desc = &pieces[i * 3 * rank..(i + 1) * 3 * rank];
        out.push(FetchPiece {
            src_begin: desc[..rank].to_vec(),
            dst_begin: desc[rank..2 * rank].to_vec(),
            len: desc[2 * rank..].to_vec(),
        });
    }
    Some(out)
}

/// One cross-device transfer of the sharded graph: `consumer` (always a
/// `multi_fetch`, by construction — non-fetch nodes only read tensors of
/// their own device) reads a piece of `tensor`, which lives on `src`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommEdge {
    /// The remote tensor being read.
    pub tensor: TensorId,
    /// The `multi_fetch` node doing the reading.
    pub consumer: NodeId,
    /// Position of `tensor` in the consumer's input list.
    pub input_index: usize,
    /// Device producing (owning) the tensor.
    pub src: usize,
    /// Device executing the consumer.
    pub dst: usize,
    /// The piece actually transferred (a sub-block of `tensor`).
    pub piece: FetchPiece,
}

impl CommEdge {
    /// Bytes moved over the `src → dst` link.
    pub fn bytes(&self) -> u64 {
        self.piece.bytes()
    }
}

impl ShardedGraph {
    /// The device executing `id`.
    pub fn device_of(&self, id: NodeId) -> usize {
        self.device_of_node[id.0]
    }

    /// The original node whose expansion generated `id`.
    pub fn origin_of(&self, id: NodeId) -> NodeId {
        self.origin_of_node[id.0]
    }

    /// Number of nodes in the original (pre-expansion) graph — one more than
    /// the largest origin, or zero for an empty graph.
    pub fn original_nodes(&self) -> usize {
        self.origin_of_node.iter().map(|n| n.0 + 1).max().unwrap_or(0)
    }

    /// The nodes device `w` executes, in schedule (insertion/topological)
    /// order — each worker's serial sub-schedule.
    pub fn worker_schedule(&self, w: usize) -> Vec<NodeId> {
        self.graph
            .node_ids()
            .filter(|&id| self.device_of_node[id.0] == w)
            .collect()
    }

    /// Every cross-device tensor transfer, in consumer schedule order. By
    /// construction all of them enter `multi_fetch` nodes; this is asserted
    /// here so a violated invariant fails loudly rather than executing with
    /// stale remote reads.
    pub fn comm_edges(&self) -> Vec<CommEdge> {
        let mut out = Vec::new();
        for id in self.graph.node_ids() {
            let node = self.graph.node(id);
            let dst = self.device_of_node[id.0];
            let pieces = fetch_pieces(&self.graph, id);
            for (i, &t) in node.inputs.iter().enumerate() {
                let src = match self.device_of_tensor[t.0] {
                    Some(d) => d,
                    None => continue,
                };
                if src == dst {
                    continue;
                }
                let pieces = pieces.as_ref().unwrap_or_else(|| {
                    panic!(
                        "cross-device edge into non-fetch node {:?} ({})",
                        id, node.op
                    )
                });
                out.push(CommEdge {
                    tensor: t,
                    consumer: id,
                    input_index: i,
                    src,
                    dst,
                    piece: pieces[i].clone(),
                });
            }
        }
        out
    }

    /// Splits a full tensor value into per-worker shard feeds.
    pub fn scatter(&self, original: TensorId, value: &Tensor) -> Result<Vec<(TensorId, Tensor)>> {
        let regions = self
            .regions
            .get(&original)
            .ok_or_else(|| CoreError::Internal("unknown tensor in scatter".into()))?;
        let shards = &self.shards[&original];
        let mut out = Vec::with_capacity(regions.len());
        for (w, region) in regions.iter().enumerate() {
            let mut piece = value.clone();
            for (d, &(lo, hi)) in region.iter().enumerate() {
                piece = piece
                    .slice(d, lo as usize, hi as usize)
                    .map_err(|e| CoreError::Internal(format!("scatter slice: {e}")))?;
            }
            out.push((shards[w], piece));
        }
        Ok(out)
    }

    /// Reassembles a full tensor from per-worker shard values.
    pub fn gather(
        &self,
        original: TensorId,
        full_shape: &Shape,
        values: &BTreeMap<TensorId, Tensor>,
    ) -> Result<Tensor> {
        let regions = self
            .regions
            .get(&original)
            .ok_or_else(|| CoreError::Internal("unknown tensor in gather".into()))?;
        let shards = &self.shards[&original];
        let mut out = Tensor::zeros(full_shape.clone());
        for (w, region) in regions.iter().enumerate() {
            let piece = values
                .get(&shards[w])
                .ok_or_else(|| CoreError::Internal("missing shard value in gather".into()))?;
            let lens: Vec<usize> = region.iter().map(|&(lo, hi)| (hi - lo) as usize).collect();
            for idx in Shape::new(lens).indices() {
                let dst: Vec<usize> = idx
                    .iter()
                    .zip(region)
                    .map(|(&o, &(lo, _))| o + lo as usize)
                    .collect();
                out.set(&dst, piece.at(&idx));
            }
        }
        Ok(out)
    }
}

/// Mixed-radix digit of worker `w` at recursion step `s` given the per-step
/// group counts.
fn digit(w: usize, s: usize, factors: &[usize]) -> usize {
    let suffix: usize = factors[s + 1..].iter().product();
    (w / suffix) % factors[s]
}

fn narrow(range: (f64, f64), digit: usize, ways: usize) -> (f64, f64) {
    let span = range.1 - range.0;
    (
        range.0 + span * digit as f64 / ways as f64,
        range.0 + span * (digit + 1) as f64 / ways as f64,
    )
}

/// Variables whose narrowing makes sharded kernel semantics inexact.
fn sensitive_vars(op: &str) -> &'static [usize] {
    match op {
        "conv1d_bwd_data" => &[2, 4],
        "conv1d_bwd_filter" => &[2, 4],
        "conv2d_bwd_data" => &[2, 3, 5, 6],
        "conv2d_bwd_filter" => &[2, 3, 5, 6],
        "pool2d_grad" => &[2, 3, 4, 5],
        "global_avg_pool" => &[2, 3],
        "gap_grad" => &[2, 3],
        _ => &[],
    }
}

/// Operators whose remote gathers materialize out-of-bounds reads as zeros
/// (convolution padding); their `pad` attribute is zeroed per worker.
fn materializes_padding(op: &str) -> bool {
    matches!(op, "conv1d" | "conv2d")
}

/// Computes the per-worker shard region of a tensor from the plan's tiling.
fn shard_region(shape: &Shape, tiling: &[Option<usize>], factors: &[usize], w: usize) -> Region {
    let mut region: Region = shape.dims().iter().map(|&e| (0i64, e as i64)).collect();
    for (s, spec) in tiling.iter().enumerate() {
        if let Some(d) = spec {
            let g = digit(w, s, factors) as i64;
            let ways = factors[s] as i64;
            let span = region[*d].1 - region[*d].0;
            let lo = region[*d].0;
            region[*d] = (lo + span * g / ways, lo + span * (g + 1) / ways);
        }
    }
    region
}

/// Evaluates the per-input required regions of a description over concrete
/// variable ranges (inclusive-exclusive, in f64), returning one optional
/// region per input.
fn required_regions(
    desc: &TdlDesc,
    ranges: &[(f64, f64)],
    input_ranks: &[usize],
    extents: &[u64],
) -> Vec<Option<Vec<(f64, f64)>>> {
    let mut out: Vec<Option<Vec<(f64, f64)>>> = vec![None; input_ranks.len()];
    desc.body().for_each_access(&mut |input, indices| {
        let mut dims: Vec<(f64, f64)> = Vec::with_capacity(indices.len());
        for (d, ie) in indices.iter().enumerate() {
            match ie {
                IndexExpr::Full => {
                    // The access spans the full input dimension. Its extent
                    // is not a variable; recover it from the caller-supplied
                    // input-dim info via the sentinel below (patched by the
                    // caller because extents here are per *variable*).
                    dims.push((0.0, f64::INFINITY));
                    let _ = d;
                }
                IndexExpr::Affine(a) => {
                    let mut lo = a.constant;
                    let mut hi = a.constant;
                    for &(v, c) in &a.terms {
                        // Inclusive value range of the variable: [lo, hi-1].
                        let (vlo, vhi) = (ranges[v].0, ranges[v].1 - 1.0);
                        if c >= 0.0 {
                            lo += c * vlo;
                            hi += c * vhi;
                        } else {
                            lo += c * vhi;
                            hi += c * vlo;
                        }
                    }
                    dims.push((lo, hi + 1.0));
                }
            }
        }
        match &mut out[input] {
            Some(existing) => {
                for (e, n) in existing.iter_mut().zip(dims) {
                    e.0 = e.0.min(n.0);
                    e.1 = e.1.max(n.1);
                }
            }
            slot @ None => *slot = Some(dims),
        }
    });
    let _ = extents;
    out
}

/// Generates the `k`-worker graph for a plan.
pub fn generate(g: &Graph, plan: &PartitionPlan, opts: &GenOptions) -> Result<ShardedGraph> {
    let k = plan.workers;
    let factors: Vec<usize> = plan.steps.iter().map(|s| s.ways).collect();
    let mut out = Graph::new();
    let mut exact = true;

    // Shard regions and leaf shard tensors.
    let mut regions: BTreeMap<TensorId, Vec<Region>> = BTreeMap::new();
    let mut shards: BTreeMap<TensorId, Vec<TensorId>> = BTreeMap::new();
    let mut device_of_tensor: Vec<Option<usize>> = Vec::new();
    let mut device_of_node: Vec<usize> = Vec::new();
    let mut origin_of_node: Vec<NodeId> = Vec::new();

    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        let per_worker: Vec<Region> = (0..k)
            .map(|w| shard_region(&meta.shape, &plan.tiling[t.0], &factors, w))
            .collect();
        regions.insert(t, per_worker.clone());
        if meta.kind != TensorKind::Intermediate {
            let mut ids = Vec::with_capacity(k);
            for (w, region) in per_worker.iter().enumerate() {
                let dims: Vec<usize> =
                    region.iter().map(|&(lo, hi)| (hi - lo) as usize).collect();
                let name = format!("w{w}/{}", meta.name);
                let id = if meta.kind == TensorKind::Weight {
                    out.add_weight(&name, Shape::new(dims))
                } else {
                    out.add_input(&name, Shape::new(dims))
                };
                sync_tensor_devices(&mut device_of_tensor, &out, Some(w));
                ids.push(id);
            }
            shards.insert(t, ids);
        }
    }

    // Per original node, expand.
    for id in g.node_ids() {
        let node = g.node(id);
        let def = tofu_graph::lookup(&node.op)?;
        let in_shapes: Vec<Shape> =
            node.inputs.iter().map(|&t| g.tensor(t).shape.clone()).collect();
        let tdl_fn = def.tdl.ok_or_else(|| CoreError::NotDescribable {
            node: node.name.clone(),
            op: node.op.clone(),
        })?;
        let desc = tdl_fn(&in_shapes, &node.attrs).ok_or_else(|| CoreError::NotDescribable {
            node: node.name.clone(),
            op: node.op.clone(),
        })?;
        let out_dims = g.tensor(node.output).shape.dims().to_vec();
        let in_dims: Vec<Vec<usize>> = in_shapes.iter().map(|s| s.dims().to_vec()).collect();
        let extents = bind_extents(&desc, &out_dims, &in_dims)?;

        // Which steps reduce, and with which reducer.
        let mut reduce_steps: Vec<usize> = Vec::new();
        let mut reducer: Option<Reducer> = None;
        for (s, step) in plan.steps.iter().enumerate() {
            if let NodeChoice::Strategy(st) = &step.plan.node_choice[id.0] {
                if matches!(st.out, ConcreteOut::Reduce) {
                    reduce_steps.push(s);
                    if reducer.is_none() {
                        reducer = st.reducer;
                    } else if reducer != st.reducer {
                        exact = false; // Mixed reducers: approximate with the first.
                    }
                }
            }
        }

        // Per-worker variable ranges and computed blocks.
        let mut var_ranges: Vec<Vec<(f64, f64)>> = Vec::with_capacity(k);
        for w in 0..k {
            let mut ranges: Vec<(f64, f64)> =
                extents.iter().map(|&e| (0.0, e as f64)).collect();
            for (s, step) in plan.steps.iter().enumerate() {
                let ways = step.ways;
                let dgt = digit(w, s, &factors);
                match &step.plan.node_choice[id.0] {
                    NodeChoice::Strategy(st) => {
                        if st.var < ranges.len() {
                            ranges[st.var] = narrow(ranges[st.var], dgt, ways);
                            if sensitive_vars(&node.op).contains(&st.var) {
                                exact = false;
                            }
                        }
                    }
                    NodeChoice::Ewise(spec) => {
                        if let Some(d) = spec.dim() {
                            if d < desc.output_rank() {
                                ranges[d] = narrow(ranges[d], dgt, ways);
                            }
                        }
                    }
                }
            }
            var_ranges.push(ranges);
        }

        // Pass 1: compute each worker's raw output (and remember its block).
        let mut raw_outputs: Vec<TensorId> = Vec::with_capacity(k);
        let mut blocks: Vec<Region> = Vec::with_capacity(k);
        let mut compute_nodes: Vec<NodeId> = Vec::with_capacity(k);
        for (w, ranges) in var_ranges.iter().enumerate() {
            let materialize = materializes_padding(&node.op);
            let req =
                required_regions(&desc, ranges, desc.input_ranks(), &extents);
            let mut new_inputs: Vec<TensorId> = Vec::with_capacity(node.inputs.len());
            let mut input_regions: Vec<Region> = Vec::with_capacity(node.inputs.len());
            for (i, &t) in node.inputs.iter().enumerate() {
                let in_shape = &g.tensor(t).shape;
                let region: Region = match &req[i] {
                    None => in_shape.dims().iter().map(|&e| (0, e as i64)).collect(),
                    Some(dims) => dims
                        .iter()
                        .enumerate()
                        .map(|(d, &(lo, hi))| {
                            let e = in_shape.dim(d) as f64;
                            let (lo, hi) = if lo.is_infinite() || hi.is_infinite() {
                                (0.0, e)
                            } else if materialize {
                                (lo, hi)
                            } else {
                                // Clip to the tensor; a region entirely out
                                // of bounds (e.g. a pad gradient whose block
                                // maps below index 0) collapses to empty.
                                let lo = lo.clamp(0.0, e);
                                (lo, hi.clamp(lo, e))
                            };
                            let lo = lo.floor() as i64;
                            (lo, ((hi - 1e-9).ceil() as i64).max(lo))
                        })
                        .collect(),
                };
                new_inputs.push(fetch_region(
                    &mut out,
                    &mut device_of_tensor,
                    &mut device_of_node,
                    &shards[&t],
                    &regions[&t],
                    &region,
                    w,
                    &format!("w{w}/fetch/{}/{i}", node.name),
                )?);
                input_regions.push(region);
            }

            // Adjusted attributes per worker.
            let block: Region = (0..desc.output_rank())
                .map(|v| (ranges[v].0.round() as i64, ranges[v].1.round() as i64))
                .collect();
            let attrs =
                adjust_attrs(&node.op, &node.attrs, &block, &input_regions, materialize);
            let tags = NodeTags { device: Some(w), ..node.tags.clone() };
            let out_t = out
                .add_op_tagged(&node.op, &format!("w{w}/{}", node.name), &new_inputs, attrs, tags)
                .map_err(CoreError::Graph)?;
            sync_tensor_devices(&mut device_of_tensor, &out, Some(w));
            device_of_node.resize(out.num_nodes(), w);
            let expect: Vec<usize> = block.iter().map(|&(lo, hi)| (hi - lo) as usize).collect();
            if out.tensor(out_t).shape.dims() != expect.as_slice() {
                return Err(CoreError::Internal(format!(
                    "node {}: worker {w} produced {} but block is {expect:?}",
                    node.name,
                    out.tensor(out_t).shape
                )));
            }
            raw_outputs.push(out_t);
            blocks.push(block);
            compute_nodes.push(NodeId(out.num_nodes() - 1));
        }

        // Pass 2: assemble each worker's final output shard.
        let out_regions = &regions[&node.output];
        let mut shard_ids: Vec<TensorId> = Vec::with_capacity(k);
        for w in 0..k {
            let target = &out_regions[w];
            if reduce_steps.is_empty() && blocks[w] == *target {
                shard_ids.push(raw_outputs[w]);
                continue;
            }
            // Enumerate reduce-peer classes: one gathered piece per combo of
            // reduce-step digits, then combine with the reducer (spread
            // reduction: every worker reduces only its own shard).
            let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
            for &s in &reduce_steps {
                let mut next = Vec::new();
                for c in &combos {
                    for d in 0..factors[s] {
                        let mut c2 = c.clone();
                        c2.push(d);
                        next.push(c2);
                    }
                }
                combos = next;
            }
            let mut partials: Vec<TensorId> = Vec::with_capacity(combos.len());
            for combo in &combos {
                // Contributors: workers whose reduce-step digits match this
                // combo and whose computed block overlaps the target shard
                // (their blocks tile the output space across the non-reduce
                // digits).
                let peers: Vec<usize> = (0..k)
                    .filter(|&p| {
                        reduce_steps
                            .iter()
                            .enumerate()
                            .all(|(pos, &rs)| digit(p, rs, &factors) == combo[pos])
                    })
                    .filter(|&p| {
                        blocks[p]
                            .iter()
                            .zip(target)
                            .all(|(b, t)| b.0.max(t.0) < b.1.min(t.1))
                    })
                    .collect();
                let sources: Vec<TensorId> = peers.iter().map(|&p| raw_outputs[p]).collect();
                let source_regions: Vec<Region> =
                    peers.iter().map(|&p| blocks[p].clone()).collect();
                let piece = gather_into(
                    &mut out,
                    &mut device_of_tensor,
                    &mut device_of_node,
                    &sources,
                    &source_regions,
                    target,
                    w,
                    &format!("w{w}/gather/{}/{}", node.name, partials.len()),
                )?;
                partials.push(piece);
            }
            let shard = if partials.len() == 1 {
                partials[0]
            } else {
                combine(
                    &mut out,
                    &mut device_of_tensor,
                    &mut device_of_node,
                    &partials,
                    reducer.unwrap_or(Reducer::Sum),
                    w,
                    &format!("w{w}/reduce/{}", node.name),
                )?
            };
            shard_ids.push(shard);
        }
        shards.insert(node.output, shard_ids);
        // Everything emitted while expanding this original node — fetches,
        // computes, gathers, reduces, on every worker — originates from it.
        origin_of_node.resize(out.num_nodes(), id);
    }

    // Pass 3: control dependencies mirroring original direct dependencies
    // within each worker (Fig. 7).
    if opts.control_deps {
        // Map (original node, worker) -> compute node: recover by name.
        let mut compute_of: BTreeMap<String, NodeId> = BTreeMap::new();
        for nid in out.node_ids() {
            let n = out.node(nid);
            compute_of.insert(n.name.clone(), nid);
        }
        for id in g.node_ids() {
            let node = g.node(id);
            for &t in &node.inputs {
                if let Some(p) = g.producer(t) {
                    let pname = &g.node(p).name;
                    for w in 0..k {
                        let a = compute_of.get(&format!("w{w}/{}", node.name));
                        let b = compute_of.get(&format!("w{w}/{pname}"));
                        if let (Some(&a), Some(&b)) = (a, b) {
                            out.add_control_dep(a, b);
                        }
                    }
                }
            }
        }
    }

    device_of_node.resize(out.num_nodes(), 0);
    debug_assert_eq!(origin_of_node.len(), out.num_nodes());
    Ok(ShardedGraph {
        graph: out,
        workers: k,
        shards,
        regions,
        device_of_node,
        device_of_tensor,
        origin_of_node,
        exact,
    })
}

fn sync_tensor_devices(devices: &mut Vec<Option<usize>>, g: &Graph, device: Option<usize>) {
    devices.resize(g.num_tensors(), device);
    // Newly appended entries already take `device` via resize.
    if let Some(last) = devices.last_mut() {
        *last = device;
    }
}

/// Per-worker attribute adjustments: materialized padding zeroes the pad,
/// backward convolutions pin their output extents to the worker's block, and
/// offset-sensitive data ops are rebased onto their assembled input region.
fn adjust_attrs(
    op: &str,
    attrs: &Attrs,
    block: &Region,
    input_regions: &[Region],
    materialize: bool,
) -> Attrs {
    let mut a = attrs.clone();
    if materialize {
        a = a.with_int("pad", 0);
    }
    match op {
        "conv2d_bwd_data" => {
            a = a.with_int("in_h", block[2].1 - block[2].0);
            a = a.with_int("in_w", block[3].1 - block[3].0);
        }
        "conv1d_bwd_data" => {
            a = a.with_int("in_x", block[2].1 - block[2].0);
        }
        "conv2d_bwd_filter" => {
            a = a.with_int("kh", block[2].1 - block[2].0);
            a = a.with_int("kw", block[3].1 - block[3].0);
        }
        "conv1d_bwd_filter" => {
            a = a.with_int("dx", block[2].1 - block[2].0);
        }
        "slice_axis" => {
            // The assembled input is exactly the region the slice needs:
            // rebase `[begin, end)` from original coordinates onto it.
            let axis = attrs.int_or("axis", 0) as usize;
            let begin = attrs.int_or("begin", 0);
            let new_begin = begin + block[axis].0 - input_regions[0][axis].0;
            a = a
                .with_int("begin", new_begin)
                .with_int("end", new_begin + (block[axis].1 - block[axis].0));
        }
        "pad" => {
            // out[j] = x[j - before]: the assembled (clipped) input region
            // determines how many zeros pad each side of the block. An empty
            // region means the whole block is padding.
            let axis = attrs.int_or("axis", 0) as usize;
            let before = attrs.int_or("before", 0);
            let (rlo, rhi) = input_regions[0][axis];
            let block_len = block[axis].1 - block[axis].0;
            let (new_before, new_after) = if rhi <= rlo {
                (block_len, 0)
            } else {
                (
                    (rlo - (block[axis].0 - before)).max(0),
                    ((block[axis].1 - before) - rhi).max(0),
                )
            };
            a = a.with_int("before", new_before).with_int("after", new_after);
        }
        // `flip` reverses the whole assembled region, which is exactly the
        // mirrored block: no change needed.
        _ => {}
    }
    a
}

/// Emits the nodes assembling `target` (a region of some original tensor)
/// on worker `w` from the available shards. Returns the assembled tensor.
/// When the target matches worker `w`'s own shard exactly, no node is
/// emitted.
#[allow(clippy::too_many_arguments)]
fn fetch_region(
    out: &mut Graph,
    device_of_tensor: &mut Vec<Option<usize>>,
    device_of_node: &mut Vec<usize>,
    shard_ids: &[TensorId],
    shard_regions: &[Region],
    target: &Region,
    w: usize,
    name: &str,
) -> Result<TensorId> {
    if &shard_regions[w] == target {
        return Ok(shard_ids[w]);
    }
    gather_into(
        out,
        device_of_tensor,
        device_of_node,
        shard_ids,
        shard_regions,
        target,
        w,
        name,
    )
}

/// Emits one multi_fetch node assembling `target` from the given source
/// tensors (each covering `source_regions[i]`), zero-filling uncovered
/// coordinates (materialized padding).
#[allow(clippy::too_many_arguments)]
fn gather_into(
    out: &mut Graph,
    device_of_tensor: &mut Vec<Option<usize>>,
    device_of_node: &mut Vec<usize>,
    sources: &[TensorId],
    source_regions: &[Region],
    target: &Region,
    w: usize,
    name: &str,
) -> Result<TensorId> {
    let rank = target.len();
    let out_dims: Vec<i64> = target.iter().map(|&(lo, hi)| hi - lo).collect();
    let mut inputs: Vec<TensorId> = Vec::new();
    let mut pieces: Vec<i64> = Vec::new();
    let mut covered: Vec<Region> = Vec::new();
    for (src, region) in sources.iter().zip(source_regions) {
        // Intersection of the source region with the target.
        let mut isect: Region = Vec::with_capacity(rank);
        let mut nonempty = true;
        for d in 0..rank {
            let lo = region[d].0.max(target[d].0);
            let hi = region[d].1.min(target[d].1);
            if lo >= hi {
                nonempty = false;
                break;
            }
            isect.push((lo, hi));
        }
        if !nonempty {
            continue;
        }
        // Avoid copying a block some earlier source already covers entirely
        // (replicated shards overlap).
        if covered.iter().any(|c| {
            (0..rank).all(|d| c[d].0 <= isect[d].0 && isect[d].1 <= c[d].1)
        }) {
            continue;
        }
        for d in 0..rank {
            pieces.push(isect[d].0 - region[d].0); // src_begin
        }
        for d in 0..rank {
            pieces.push(isect[d].0 - target[d].0); // dst_begin
        }
        for s in &isect {
            pieces.push(s.1 - s.0); // len
        }
        covered.push(isect);
        inputs.push(*src);
    }
    let attrs = Attrs::new().with_ints("out_dims", out_dims).with_ints("pieces", pieces);
    let tags = NodeTags { device: Some(w), ..NodeTags::default() };
    let t = out
        .add_op_tagged("multi_fetch", name, &inputs, attrs, tags)
        .map_err(CoreError::Graph)?;
    sync_tensor_devices(device_of_tensor, out, Some(w));
    device_of_node.resize(out.num_nodes(), w);
    Ok(t)
}

/// Emits the reducer combining partial shards (spread reduction).
fn combine(
    out: &mut Graph,
    device_of_tensor: &mut Vec<Option<usize>>,
    device_of_node: &mut Vec<usize>,
    partials: &[TensorId],
    reducer: Reducer,
    w: usize,
    name: &str,
) -> Result<TensorId> {
    let tags = NodeTags { device: Some(w), ..NodeTags::default() };
    let result = match reducer {
        Reducer::Sum => out
            .add_op_tagged("add_n", name, partials, Attrs::new(), tags)
            .map_err(CoreError::Graph)?,
        Reducer::Max | Reducer::Min | Reducer::Prod => {
            let op = match reducer {
                Reducer::Max => "maximum",
                Reducer::Min => "minimum",
                _ => "mul",
            };
            let mut acc = partials[0];
            for (i, &p) in partials.iter().enumerate().skip(1) {
                acc = out
                    .add_op_tagged(
                        op,
                        &format!("{name}/{i}"),
                        &[acc, p],
                        Attrs::new(),
                        tags.clone(),
                    )
                    .map_err(CoreError::Graph)?;
                sync_tensor_devices(device_of_tensor, out, Some(w));
                device_of_node.resize(out.num_nodes(), w);
            }
            acc
        }
    };
    sync_tensor_devices(device_of_tensor, out, Some(w));
    device_of_node.resize(out.num_nodes(), w);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{run, Algorithm};
    use crate::recursive::{partition, PartitionOptions};
    use tofu_graph::{autodiff, Executor};

    /// Trains one step of a small MLP; returns the graph plus tensors whose
    /// values validation compares.
    fn mlp(batch: usize, hidden: usize) -> (Graph, Vec<TensorId>) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![batch, hidden]));
        let w1 = g.add_weight("w1", Shape::new(vec![hidden, hidden]));
        let w2 = g.add_weight("w2", Shape::new(vec![hidden, 8]));
        let labels = g.add_input("labels", Shape::new(vec![batch]));
        let h = g.add_op("matmul", "fc1", &[x, w1], Attrs::new()).unwrap();
        let a = g.add_op("tanh", "act1", &[h], Attrs::new()).unwrap();
        let y = g.add_op("matmul", "fc2", &[a, w2], Attrs::new()).unwrap();
        let loss = g.add_op("softmax_ce", "loss", &[y, labels], Attrs::new()).unwrap();
        let info = autodiff::backward(&mut g, loss, &[w1, w2]).unwrap();
        let g1 = info.grad(w1).unwrap();
        let g2 = info.grad(w2).unwrap();
        (g, vec![loss, g1, g2])
    }

    fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
        let mut out = Vec::new();
        for t in g.tensor_ids() {
            let meta = g.tensor(t);
            match meta.kind {
                TensorKind::Input | TensorKind::Weight => {
                    let v = if meta.name == "labels" {
                        let b = meta.shape.dim(0);
                        Tensor::from_vec(
                            meta.shape.clone(),
                            (0..b).map(|i| (i % 3) as f32).collect(),
                        )
                        .unwrap()
                    } else {
                        Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.5)
                    };
                    out.push((t, v));
                }
                TensorKind::Intermediate => {}
            }
        }
        out
    }

    /// Runs original and sharded graphs and asserts the checked tensors agree.
    fn validate(g: &Graph, plan: &PartitionPlan, check: &[TensorId], tol: f32) {
        let sharded = generate(g, plan, &GenOptions::default()).unwrap();
        assert!(sharded.exact, "plan should be exactly executable");

        let mut base = Executor::new();
        let mut part = Executor::new();
        for (t, v) in feeds(g) {
            base.feed(t, v.clone());
            for (shard, piece) in sharded.scatter(t, &v).unwrap() {
                part.feed(shard, piece);
            }
        }
        let base_vals = base.run(g).unwrap();
        let part_vals = part.run(&sharded.graph).unwrap();
        for &t in check {
            let expect = &base_vals[&t];
            let got = sharded.gather(t, expect.shape(), &part_vals).unwrap();
            assert!(
                got.allclose(expect, tol),
                "tensor {} diverged: {:?} vs {:?}",
                g.tensor(t).name,
                &got.data()[..got.data().len().min(4)],
                &expect.data()[..expect.data().len().min(4)]
            );
        }
    }

    #[test]
    fn two_worker_mlp_matches_single_device() {
        let (g, check) = mlp(8, 16);
        let plan = partition(&g, &PartitionOptions { workers: 2, ..Default::default() }).unwrap();
        validate(&g, &plan, &check, 1e-4);
    }

    #[test]
    fn four_worker_mlp_matches_single_device() {
        let (g, check) = mlp(8, 16);
        let plan = partition(&g, &PartitionOptions { workers: 4, ..Default::default() }).unwrap();
        validate(&g, &plan, &check, 1e-4);
    }

    #[test]
    fn eight_worker_mlp_matches_single_device() {
        let (g, check) = mlp(16, 32);
        let plan = partition(&g, &PartitionOptions { workers: 8, ..Default::default() }).unwrap();
        validate(&g, &plan, &check, 1e-3);
    }

    #[test]
    fn baseline_plans_also_execute_correctly() {
        let (g, check) = mlp(8, 16);
        for alg in [Algorithm::AllRowGreedy, Algorithm::EqualChop, Algorithm::Icml18] {
            let plan = run(&g, alg, 4).unwrap();
            validate(&g, &plan, &check, 1e-4);
        }
    }

    #[test]
    fn sharded_graph_has_device_tags_and_control_deps() {
        let (g, _) = mlp(8, 16);
        let plan = partition(&g, &PartitionOptions { workers: 2, ..Default::default() }).unwrap();
        let with = generate(&g, &plan, &GenOptions { control_deps: true }).unwrap();
        let without = generate(&g, &plan, &GenOptions { control_deps: false }).unwrap();
        let count = |s: &ShardedGraph| {
            s.graph.node_ids().map(|n| s.graph.node(n).control_deps.len()).sum::<usize>()
        };
        assert!(count(&with) > count(&without));
        for n in with.graph.node_ids() {
            assert!(with.graph.node(n).tags.device.is_some());
        }
    }

    #[test]
    fn worker_schedules_partition_the_graph() {
        let (g, _) = mlp(8, 16);
        let plan = partition(&g, &PartitionOptions { workers: 4, ..Default::default() }).unwrap();
        let sharded = generate(&g, &plan, &GenOptions::default()).unwrap();
        let mut seen = vec![false; sharded.graph.num_nodes()];
        for w in 0..sharded.workers {
            for id in sharded.worker_schedule(w) {
                assert_eq!(sharded.device_of(id), w);
                assert!(!seen[id.0], "node {id:?} scheduled twice");
                seen[id.0] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every node belongs to some worker");
    }

    #[test]
    fn comm_edges_cover_all_remote_reads() {
        let (g, _) = mlp(8, 16);
        let plan = partition(&g, &PartitionOptions { workers: 2, ..Default::default() }).unwrap();
        let sharded = generate(&g, &plan, &GenOptions::default()).unwrap();
        let edges = sharded.comm_edges();
        assert!(!edges.is_empty(), "2-worker MLP must communicate");
        for e in &edges {
            // Only multi_fetch nodes read remote tensors (the §6 invariant
            // comm_edges itself asserts), and every edge moves a real piece
            // of the remote tensor.
            assert_eq!(sharded.graph.node(e.consumer).op, "multi_fetch");
            assert_ne!(e.src, e.dst);
            assert_eq!(e.dst, sharded.device_of(e.consumer));
            assert!(e.bytes() > 0);
            assert!(e.bytes() <= sharded.graph.tensor(e.tensor).shape.bytes());
            let pieces = fetch_pieces(&sharded.graph, e.consumer).unwrap();
            assert_eq!(pieces[e.input_index], e.piece);
        }
        // Remote reads found by brute force match exactly.
        let brute: usize = sharded
            .graph
            .node_ids()
            .map(|id| {
                let dst = sharded.device_of(id);
                sharded
                    .graph
                    .node(id)
                    .inputs
                    .iter()
                    .filter(|&&t| sharded.device_of_tensor[t.0] != Some(dst))
                    .count()
            })
            .sum();
        assert_eq!(edges.len(), brute);
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let (g, _) = mlp(8, 16);
        let plan = partition(&g, &PartitionOptions { workers: 4, ..Default::default() }).unwrap();
        let sharded = generate(&g, &plan, &GenOptions::default()).unwrap();
        let x = g.tensor_by_name("x").unwrap();
        let v = Tensor::random(g.tensor(x).shape.clone(), 9, 1.0);
        let pieces = sharded.scatter(x, &v).unwrap();
        let values: BTreeMap<TensorId, Tensor> = pieces.into_iter().collect();
        let back = sharded.gather(x, v.shape(), &values).unwrap();
        assert!(back.allclose(&v, 0.0));
    }

    #[test]
    fn origins_are_contiguous_and_complete() {
        let (g, _) = mlp(8, 16);
        let plan = partition(&g, &PartitionOptions { workers: 4, ..Default::default() }).unwrap();
        let sharded = generate(&g, &plan, &GenOptions::default()).unwrap();
        assert_eq!(sharded.origin_of_node.len(), sharded.graph.num_nodes());
        assert_eq!(sharded.original_nodes(), g.num_nodes());
        // Each original node's expansion is one contiguous run of generated
        // nodes, in original-schedule order — so any per-worker "origin < n"
        // filter selects a prefix of that worker's schedule.
        let mut prev = NodeId(0);
        for id in sharded.graph.node_ids() {
            let o = sharded.origin_of(id);
            assert!(o.0 >= prev.0, "origins must be non-decreasing");
            prev = o;
        }
        for w in 0..sharded.workers {
            let sched = sharded.worker_schedule(w);
            for barrier in 0..g.num_nodes() {
                let cut = sched.iter().take_while(|&&n| sharded.origin_of(n).0 < barrier).count();
                for (i, &n) in sched.iter().enumerate() {
                    assert_eq!(i < cut, sharded.origin_of(n).0 < barrier);
                }
            }
        }
    }
}
