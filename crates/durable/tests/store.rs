//! Store-level tests: DirStore atomicity conventions, commit/recover round
//! trips, every disk-fault kind detected with the right typed reason, and
//! retention GC.

use std::collections::BTreeMap;
use std::sync::Arc;

use tofu_durable::{
    gc, recover_latest, write_checkpoint, BlobStore, DirStore, DiskFault, DiskFaultPlan,
    DurableCheckpoint, FaultyStore, MemStore, RejectReason,
};
use tofu_tensor::{Shape, Tensor};

fn snap(ckpt: u64, tensors: usize, seed: f32) -> DurableCheckpoint {
    let tensors = (0..tensors as u64)
        .map(|i| {
            let data: Vec<f32> = (0..6).map(|j| seed + i as f32 * 10.0 + j as f32).collect();
            (i * 3, Tensor::from_vec(Shape::new(vec![2, 3]), data).unwrap())
        })
        .collect::<BTreeMap<_, _>>();
    DurableCheckpoint { ckpt, every: 2, tensors }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tofu-durable-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn dir_store_round_trip_and_tmp_files_invisible() {
    let dir = tmp_dir("roundtrip");
    let store = DirStore::open(&dir).unwrap();
    store.put("a.blob", b"hello").unwrap();
    store.put("b.blob", b"world").unwrap();
    assert_eq!(store.get("a.blob").unwrap(), b"hello");
    // Overwrite is atomic-replace, not append.
    store.put("a.blob", b"hi").unwrap();
    assert_eq!(store.get("a.blob").unwrap(), b"hi");
    // A leftover temp file (crash mid-put) is invisible to list().
    std::fs::write(dir.join(".tmp.c.blob"), b"partial").unwrap();
    assert_eq!(store.list().unwrap(), vec!["a.blob".to_string(), "b.blob".to_string()]);
    store.delete("a.blob").unwrap();
    store.delete("a.blob").unwrap(); // idempotent
    assert_eq!(store.list().unwrap(), vec!["b.blob".to_string()]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejects_bad_blob_names() {
    let store = MemStore::new();
    assert!(store.put("", b"x").is_err());
    assert!(store.put(".tmp.evil", b"x").is_err());
    assert!(store.put("../escape", b"x").is_err());
    assert!(store.put("dir/slash", b"x").is_err());
}

#[test]
fn commit_then_recover_is_identical_on_disk() {
    let dir = tmp_dir("recover");
    let store = DirStore::open(&dir).unwrap();
    let s = snap(1, 3, 0.5);
    let stats = write_checkpoint(&store, &s, true).unwrap();
    assert!(stats.committed);
    assert_eq!(stats.shards, 3);
    let rec = recover_latest(&store, Some(2)).unwrap();
    assert!(rec.rejected.is_empty());
    assert_eq!(rec.snapshot.unwrap(), s);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncommitted_checkpoint_is_invisible() {
    let store = MemStore::new();
    write_checkpoint(&store, &snap(1, 2, 0.0), true).unwrap();
    // Checkpoint 2 dies before its manifest: shards exist, commit missing.
    write_checkpoint(&store, &snap(2, 2, 9.0), false).unwrap();
    let rec = recover_latest(&store, None).unwrap();
    assert!(rec.rejected.is_empty());
    assert_eq!(rec.snapshot.unwrap().ckpt, 1);
}

fn faulted_recovery(fault: DiskFault) -> (Option<u64>, Vec<(u64, RejectReason)>) {
    let inner = Arc::new(MemStore::new());
    let store = FaultyStore::new(inner, DiskFaultPlan::none().with(fault));
    write_checkpoint(&store, &snap(1, 2, 0.0), true).unwrap();
    write_checkpoint(&store, &snap(2, 2, 50.0), true).unwrap();
    assert_eq!(store.fired(), 1, "fault {fault:?} never fired");
    let rec = recover_latest(&store, Some(2)).unwrap();
    (
        rec.snapshot.map(|s| s.ckpt),
        rec.rejected.into_iter().map(|r| (r.ckpt, r.reason)).collect(),
    )
}

#[test]
fn torn_write_detected_and_skipped() {
    let (ok, rej) = faulted_recovery(DiskFault::TornWrite { ckpt: 2, shard: 0, keep: 13 });
    assert_eq!(ok, Some(1));
    assert_eq!(rej.len(), 1);
    assert!(matches!(rej[0], (2, RejectReason::SizeMismatch { .. })), "{rej:?}");
}

#[test]
fn bit_flip_detected_and_skipped() {
    let (ok, rej) = faulted_recovery(DiskFault::BitFlip { ckpt: 2, shard: 1, bit: 137 });
    assert_eq!(ok, Some(1));
    assert_eq!(rej.len(), 1);
    assert!(matches!(rej[0], (2, RejectReason::ShardCorrupt { .. })), "{rej:?}");
}

#[test]
fn missing_shard_detected_and_skipped() {
    let (ok, rej) = faulted_recovery(DiskFault::MissingShard { ckpt: 2, shard: 1 });
    assert_eq!(ok, Some(1));
    assert_eq!(rej.len(), 1);
    assert!(matches!(rej[0], (2, RejectReason::MissingShard { .. })), "{rej:?}");
}

#[test]
fn stale_manifest_detected_and_skipped() {
    let (ok, rej) = faulted_recovery(DiskFault::StaleManifest { ckpt: 2 });
    assert_eq!(ok, Some(1));
    assert_eq!(rej.len(), 1);
    assert!(matches!(rej[0], (2, RejectReason::MissingShard { .. })), "{rej:?}");
}

#[test]
fn duplicate_manifest_detected_and_skipped() {
    let (ok, rej) = faulted_recovery(DiskFault::DuplicateManifest { ckpt: 2 });
    // The forged manifest under ordinal 3 is rejected by name/body
    // disagreement; the real checkpoint 2 still wins.
    assert_eq!(ok, Some(2));
    assert_eq!(rej.len(), 1);
    assert!(matches!(rej[0], (3, RejectReason::IdMismatch { name: 3, body: 2 })), "{rej:?}");
}

#[test]
fn wrong_cadence_rejected() {
    let store = MemStore::new();
    write_checkpoint(&store, &snap(1, 2, 0.0), true).unwrap();
    let rec = recover_latest(&store, Some(5)).unwrap();
    assert!(rec.snapshot.is_none());
    assert!(matches!(rec.rejected[0].reason, RejectReason::WrongCadence { want: 5, got: 2 }));
}

#[test]
fn seeded_plan_is_deterministic() {
    let a = DiskFaultPlan::seeded(42, 3, 4);
    let b = DiskFaultPlan::seeded(42, 3, 4);
    assert_eq!(a, b);
    assert_eq!(a.faults.len(), 1);
    assert_eq!(a.faults[0].target_ckpt(), 3);
}

#[test]
fn gc_keeps_newest_and_sweeps_orphans() {
    let store = MemStore::new();
    for k in 1..=4 {
        write_checkpoint(&store, &snap(k, 2, k as f32), true).unwrap();
    }
    // Orphan shards from a checkpoint that never committed (older than all
    // retained ones — e.g. a crashed pre-commit write later superseded).
    // Checkpoint 5's uncommitted shards are NEWER than the retained set and
    // must survive GC (a restart will overwrite them).
    write_checkpoint(&store, &snap(5, 2, 9.0), false).unwrap();
    let removed = gc(&store, 2).unwrap();
    // Manifests 1 and 2 go, plus their 2 shards each.
    assert_eq!(removed, 6);
    let names = store.list().unwrap();
    assert!(names.iter().any(|n| n.contains("00000003.manifest")));
    assert!(names.iter().any(|n| n.contains("00000004.manifest")));
    assert!(!names.iter().any(|n| n.contains("00000001") || n.contains("00000002")));
    // Uncommitted-but-newer shards survive.
    assert!(names.iter().any(|n| n.starts_with("ckpt-00000005-")));
    let rec = recover_latest(&store, None).unwrap();
    assert_eq!(rec.snapshot.unwrap().ckpt, 4);
}

#[test]
fn gc_after_crash_leaves_recoverable_state() {
    // Even if every manifest but the newest is deleted and *then* the
    // process dies before sweeping shards, recovery still works.
    let store = MemStore::new();
    for k in 1..=3 {
        write_checkpoint(&store, &snap(k, 2, k as f32), true).unwrap();
    }
    store.delete("ckpt-00000001.manifest").unwrap();
    store.delete("ckpt-00000002.manifest").unwrap();
    let rec = recover_latest(&store, None).unwrap();
    assert_eq!(rec.snapshot.unwrap().ckpt, 3);
    // The orphan shards are swept by the next GC pass.
    let removed = gc(&store, 2).unwrap();
    assert_eq!(removed, 4);
}
