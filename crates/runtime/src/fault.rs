//! Deterministic fault injection.
//!
//! A [`FaultPlan`] in [`RunOptions`](crate::RunOptions) names exactly which
//! failures to inject and where: kill or panic a worker at a chosen schedule
//! position, tamper with the n-th message on a chosen link (drop, duplicate,
//! corrupt, delay), or force a buffer-pool over-budget event. Injection
//! points are schedule positions and per-link message indices — both
//! deterministic for a given sharded graph — so every run of a plan exercises
//! the identical failure path.
//!
//! Each fault carries a [`FaultPersistence`]: `Transient` faults fire
//! **once** per [`FaultState`] (and `run_with_recovery` shares one state
//! across retries, so the retry observes a healthy world and can validate
//! the checkpoint-restart path), while `Permanent` faults re-fire on every
//! attempt — modelling a device that is gone for good, the trigger for
//! elastic degraded-mode recovery. Fault worker indices name **physical**
//! devices: when elastic recovery shrinks the worker set, surviving logical
//! workers keep querying the state under their original physical ids, so a
//! permanent fault follows its device and disappears with it.
//!
//! [`FaultRng`] is a small deterministic generator (SplitMix64) for deriving
//! fault sites from a seed — used by the `fault_matrix` bench and tests to
//! sweep schedule positions without hand-picking them.
//!
//! # Fleet churn
//!
//! A [`ChurnPlan`] scripts fleet-*membership* events on top of the fault
//! plan: a [`ChurnEvent::Leave`] makes a device die permanently at a chosen
//! schedule position (the trigger for an elastic shrink), and a
//! [`ChurnEvent::Join`] announces that a device (re)joins and asks the
//! elastic ladder to grow back onto it at a chosen checkpoint barrier.
//! Events are processed **strictly in plan order**: exactly one event is
//! *armed* at a time, a `Leave` behaves like a permanent kill while armed
//! and is retired when elastic recovery removes the device, and the next
//! event arms only then. Injection sites are schedule positions and barrier
//! ids — both deterministic for a given graph — so one seed yields one
//! replayable fleet history: the same leave/rejoin/leave sequence, the same
//! widths, the same bit-exact output, every run.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use tofu_durable::{DiskFault, DiskFaultPlan};

/// What to do to one targeted cross-worker message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFault {
    /// Swallow the message (the wire loses it).
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Flip a payload bit after the checksum is computed.
    Corrupt,
    /// Hold the message back for the given time before sending.
    Delay(Duration),
}

/// One injected failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Worker `worker` dies silently just before executing schedule
    /// position `pos` (clamped to its last position).
    Kill {
        /// Victim worker.
        worker: usize,
        /// Local schedule position at which it dies.
        pos: usize,
    },
    /// Worker `worker` panics just before executing schedule position `pos`.
    Panic {
        /// Victim worker.
        worker: usize,
        /// Local schedule position at which it panics.
        pos: usize,
    },
    /// Tamper with the `index`-th message (0-based, in send order, startup
    /// sends included) that `src` pushes to `dst`.
    Message {
        /// Sending worker.
        src: usize,
        /// Receiving worker.
        dst: usize,
        /// 0-based message index on the `src → dst` link.
        index: u64,
        /// What to do to it.
        action: MessageFault,
    },
    /// Clamp worker `worker`'s buffer-pool budget below its current
    /// occupancy just before schedule position `pos`, forcing the next
    /// `apply` to fail with an over-budget pool error.
    PoolOverBudget {
        /// Victim worker.
        worker: usize,
        /// Local schedule position at which the budget clamps.
        pos: usize,
    },
}

/// Whether an injected fault models a glitch or a lasting condition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultPersistence {
    /// Fires once per [`FaultState`]; retries observe a healthy world.
    #[default]
    Transient,
    /// Re-fires on every attempt that reaches the injection site: the
    /// device (or link) is broken for good. Retrying at the same width can
    /// never succeed — only removing the target from the topology can.
    Permanent,
}

/// One fault plus its persistence mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failure to inject.
    pub fault: Fault,
    /// Transient (fire once) or permanent (re-fire every attempt).
    pub persistence: FaultPersistence,
}

/// The full set of faults to inject into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults to inject; order is irrelevant.
    pub faults: Vec<InjectedFault>,
    /// Disk faults to inject into the durable checkpoint store. Only
    /// consumed by [`run_with_durable_recovery`](crate::run_with_durable_recovery);
    /// plain runs reject a non-empty disk plan at validation.
    pub disk: DiskFaultPlan,
}

impl FaultPlan {
    /// An empty plan (no injection).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a single transient fault.
    pub fn single(fault: Fault) -> FaultPlan {
        FaultPlan::default().with(fault)
    }

    /// A plan with a single permanent fault.
    pub fn single_permanent(fault: Fault) -> FaultPlan {
        FaultPlan::default().with_permanent(fault)
    }

    /// Adds a transient fault, builder style.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(InjectedFault { fault, persistence: FaultPersistence::Transient });
        self
    }

    /// Adds a permanent fault, builder style.
    pub fn with_permanent(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(InjectedFault { fault, persistence: FaultPersistence::Permanent });
        self
    }

    /// Adds a disk fault against the durable checkpoint store, builder style.
    pub fn with_disk(mut self, fault: DiskFault) -> FaultPlan {
        self.disk.faults.push(fault);
        self
    }

    /// True when nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.disk.is_empty()
    }
}

/// One scripted fleet-membership event. Devices are **physical** ids (the
/// same namespace fault plans target); schedule positions and checkpoint
/// ids are deterministic for a given graph, so a plan replays identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Device `device` leaves the fleet for good: while this event is armed
    /// it behaves like a permanent kill just before local schedule position
    /// `pos` (clamped like any step fault), and elastic recovery retires the
    /// event when it removes the device from the topology.
    Leave {
        /// Physical device that leaves.
        device: usize,
        /// Local schedule position at which it dies.
        pos: usize,
    },
    /// Device `device` (re)joins the fleet: once armed, the elastic ladder
    /// yields the run at a checkpoint barrier at or after `at_ckpt` (plus
    /// the policy's grow hysteresis), reshards onto the enlarged device
    /// set, and resumes at the grown width.
    Join {
        /// Physical device that joins; may be a brand-new id.
        device: usize,
        /// Earliest (1-based) checkpoint barrier the grow may happen at.
        at_ckpt: usize,
    },
}

/// An ordered script of fleet-membership events (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Events, in the order they must happen.
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// An empty plan (no churn).
    pub fn none() -> ChurnPlan {
        ChurnPlan::default()
    }

    /// Appends a leave event, builder style.
    pub fn with_leave(mut self, device: usize, pos: usize) -> ChurnPlan {
        self.events.push(ChurnEvent::Leave { device, pos });
        self
    }

    /// Appends a join event, builder style.
    pub fn with_join(mut self, device: usize, at_ckpt: usize) -> ChurnPlan {
        self.events.push(ChurnEvent::Join { device, at_ckpt });
        self
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True when any event is a join (joins need plan-independent
    /// checkpoints to grow at).
    pub fn has_joins(&self) -> bool {
        self.events.iter().any(|e| matches!(e, ChurnEvent::Join { .. }))
    }

    /// A seeded random churn script over an initial fleet of
    /// `fleet` devices (`0..fleet`): `events` leave/join events whose
    /// membership is always valid (leaves target present devices and keep at
    /// least two present; joins bring back absent ones). Equal arguments
    /// yield the identical plan — the determinism the chaos harness replays.
    pub fn seeded(seed: u64, events: usize, fleet: usize, max_pos: usize, max_ckpt: usize) -> ChurnPlan {
        let mut rng = FaultRng::new(seed);
        let mut present: Vec<bool> = vec![true; fleet];
        let mut plan = ChurnPlan::none();
        for _ in 0..events {
            let here: Vec<usize> = (0..fleet).filter(|&d| present[d]).collect();
            let gone: Vec<usize> = (0..fleet).filter(|&d| !present[d]).collect();
            let can_leave = here.len() > 2;
            let can_join = !gone.is_empty();
            if !can_leave && !can_join {
                break;
            }
            let leave = can_leave && (!can_join || rng.below(2) == 0);
            if leave {
                let d = here[rng.below(here.len() as u64) as usize];
                present[d] = false;
                plan = plan.with_leave(d, rng.below(max_pos.max(1) as u64) as usize);
            } else {
                let d = gone[rng.below(gone.len() as u64) as usize];
                present[d] = true;
                plan = plan.with_join(d, 1 + rng.below(max_ckpt.max(1) as u64) as usize);
            }
        }
        plan
    }

    /// Checks the script against an initial fleet of `initial_workers`
    /// devices: every leave must target a present device and every join an
    /// absent one, in plan order.
    pub fn validate(&self, initial_workers: usize) -> std::result::Result<(), String> {
        let mut present: Vec<usize> = (0..initial_workers).collect();
        for (i, e) in self.events.iter().enumerate() {
            match *e {
                ChurnEvent::Leave { device, .. } => {
                    let Some(at) = present.iter().position(|&d| d == device) else {
                        return Err(format!(
                            "churn event {i}: device {device} leaves but is not in the fleet"
                        ));
                    };
                    present.remove(at);
                }
                ChurnEvent::Join { device, at_ckpt } => {
                    if at_ckpt == 0 {
                        return Err(format!(
                            "churn event {i}: join checkpoint ids are 1-based; 0 is invalid"
                        ));
                    }
                    if present.contains(&device) {
                        return Err(format!(
                            "churn event {i}: device {device} joins but is already in the fleet"
                        ));
                    }
                    present.push(device);
                }
            }
        }
        Ok(())
    }
}

/// Deterministic SplitMix64 stream for deriving fault sites from a seed.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A stream seeded by `seed`; equal seeds yield equal streams.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed ^ 0x9e3779b97f4a7c15 }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (`n` must be positive).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "FaultRng::below(0)");
        self.next_u64() % n
    }
}

/// A step fault that fired at a worker's schedule position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepFault {
    Kill,
    Panic,
    PoolOverBudget,
}

/// Shared injection state of a plan. One `FaultState` spans every retry of a
/// `run_with_recovery` call (and every width of an elastic ladder), so each
/// *transient* fault is observed by exactly one attempt while *permanent*
/// faults keep firing for as long as their device stays in the topology.
#[derive(Debug)]
pub(crate) struct FaultState {
    faults: Vec<(InjectedFault, AtomicBool)>,
    /// Scripted membership events, processed strictly in order: index of
    /// the currently *armed* event. An armed `Leave` acts as a permanent
    /// kill of its device; the elastic driver retires it (and arms the next
    /// event) when the device actually leaves the topology.
    churn: Vec<ChurnEvent>,
    armed: AtomicUsize,
    /// Whether any message fault exists in the plan at all. Computed once so
    /// the send hot path can skip the per-message fault-table scan entirely
    /// on fault-free runs.
    has_message: bool,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> FaultState {
        FaultState::with_churn(plan, &ChurnPlan::none())
    }

    pub(crate) fn with_churn(plan: &FaultPlan, churn: &ChurnPlan) -> FaultState {
        FaultState {
            faults: plan.faults.iter().map(|f| (f.clone(), AtomicBool::new(false))).collect(),
            churn: churn.events.clone(),
            armed: AtomicUsize::new(0),
            has_message: plan.faults.iter().any(|f| matches!(f.fault, Fault::Message { .. })),
        }
    }

    /// True when the plan contains at least one message fault (armed or
    /// already fired) — senders consult this before scanning the table.
    pub(crate) fn has_message_faults(&self) -> bool {
        self.has_message
    }

    /// The currently armed churn event, if the script has any left.
    pub(crate) fn armed_event(&self) -> Option<ChurnEvent> {
        self.churn.get(self.armed.load(Ordering::Acquire)).copied()
    }

    /// `(device, at_ckpt)` when the armed event is a join.
    pub(crate) fn pending_join(&self) -> Option<(usize, usize)> {
        match self.armed_event() {
            Some(ChurnEvent::Join { device, at_ckpt }) => Some((device, at_ckpt)),
            _ => None,
        }
    }

    /// Retires the armed churn event; the next one (if any) arms.
    pub(crate) fn advance_churn(&self) {
        self.armed.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether fault `i` fires now: permanent faults always do, transient
    /// faults only on the first call.
    fn fire(&self, i: usize) -> bool {
        match self.faults[i].0.persistence {
            FaultPersistence::Permanent => true,
            FaultPersistence::Transient => !self.faults[i].1.swap(true, Ordering::AcqRel),
        }
    }

    /// The step faults (kill/panic/pool) firing for physical device `worker`
    /// just before its local schedule position `pos`. `last` is the worker's
    /// final position, used to clamp out-of-range injection sites so "late"
    /// faults on short schedules still fire; `start` is the position the
    /// attempt resumed from, so a permanent fault planted *before* the
    /// resume cut still kills the attempt at its first step instead of
    /// silently becoming unreachable.
    pub(crate) fn step_faults(
        &self,
        worker: usize,
        pos: usize,
        last: usize,
        start: usize,
    ) -> Vec<StepFault> {
        let mut out = Vec::new();
        for (i, (f, _)) in self.faults.iter().enumerate() {
            let (w, p, kind) = match &f.fault {
                Fault::Kill { worker, pos } => (*worker, *pos, StepFault::Kill),
                Fault::Panic { worker, pos } => (*worker, *pos, StepFault::Panic),
                Fault::PoolOverBudget { worker, pos } => {
                    (*worker, *pos, StepFault::PoolOverBudget)
                }
                Fault::Message { .. } => continue,
            };
            if w == worker && p.min(last).max(start) == pos && self.fire(i) {
                out.push(kind);
            }
        }
        // An armed churn leave is a permanent kill of its device: it
        // re-fires on every attempt that reaches the site until the elastic
        // driver removes the device and retires the event.
        if let Some(ChurnEvent::Leave { device, pos: p }) = self.armed_event() {
            if device == worker && p.min(last).max(start) == pos {
                out.push(StepFault::Kill);
            }
        }
        out
    }

    /// The message fault (if any) targeting the `index`-th message that
    /// physical device `src` pushes to physical device `dst`.
    pub(crate) fn message_action(
        &self,
        src: usize,
        dst: usize,
        index: u64,
    ) -> Option<MessageFault> {
        for (i, (f, _)) in self.faults.iter().enumerate() {
            if let Fault::Message { src: s, dst: d, index: n, action } = &f.fault {
                if *s == src && *d == dst && *n == index && self.fire(i) {
                    return Some(*action);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_faults_fire_once() {
        let st = FaultState::new(&FaultPlan::single(Fault::Kill { worker: 1, pos: 3 }));
        assert!(st.step_faults(0, 3, 10, 0).is_empty(), "wrong worker");
        assert!(st.step_faults(1, 2, 10, 0).is_empty(), "wrong position");
        assert_eq!(st.step_faults(1, 3, 10, 0), vec![StepFault::Kill]);
        assert!(st.step_faults(1, 3, 10, 0).is_empty(), "transient faults are one-shot");
    }

    #[test]
    fn permanent_faults_refire_every_attempt() {
        let st = FaultState::new(&FaultPlan::single_permanent(Fault::Kill { worker: 1, pos: 3 }));
        assert_eq!(st.step_faults(1, 3, 10, 0), vec![StepFault::Kill]);
        assert_eq!(st.step_faults(1, 3, 10, 0), vec![StepFault::Kill], "permanent re-fires");
        // An attempt resumed past the injection site still dies — at its
        // first position, because the dead device is dead everywhere.
        assert!(st.step_faults(1, 6, 10, 5).is_empty());
        assert_eq!(st.step_faults(1, 5, 10, 5), vec![StepFault::Kill]);
    }

    #[test]
    fn out_of_range_position_clamps_to_last() {
        let st = FaultState::new(&FaultPlan::single(Fault::Panic { worker: 0, pos: 99 }));
        assert!(st.step_faults(0, 4, 5, 0).is_empty());
        assert_eq!(st.step_faults(0, 5, 5, 0), vec![StepFault::Panic]);
    }

    #[test]
    fn message_action_matches_link_and_index() {
        let st = FaultState::new(&FaultPlan::single(Fault::Message {
            src: 0,
            dst: 2,
            index: 1,
            action: MessageFault::Drop,
        }));
        assert_eq!(st.message_action(0, 2, 0), None);
        assert_eq!(st.message_action(1, 2, 1), None);
        assert_eq!(st.message_action(0, 2, 1), Some(MessageFault::Drop));
        assert_eq!(st.message_action(0, 2, 1), None, "message faults are one-shot");
    }

    #[test]
    fn churn_events_process_strictly_in_order() {
        let plan = ChurnPlan::none().with_leave(1, 3).with_join(1, 2).with_leave(2, 5);
        let st = FaultState::with_churn(&FaultPlan::none(), &plan);
        // The armed leave re-fires like a permanent kill...
        assert_eq!(st.step_faults(1, 3, 10, 0), vec![StepFault::Kill]);
        assert_eq!(st.step_faults(1, 3, 10, 0), vec![StepFault::Kill]);
        // ...and masks every later event: the join is not pending yet, and
        // the second leave does not fire.
        assert_eq!(st.pending_join(), None);
        assert!(st.step_faults(2, 5, 10, 0).is_empty());
        st.advance_churn();
        assert!(st.step_faults(1, 3, 10, 0).is_empty(), "retired leave no longer fires");
        assert_eq!(st.pending_join(), Some((1, 2)));
        st.advance_churn();
        assert_eq!(st.pending_join(), None);
        assert_eq!(st.step_faults(2, 5, 10, 0), vec![StepFault::Kill], "third event armed");
        st.advance_churn();
        assert_eq!(st.armed_event(), None, "script exhausted");
    }

    #[test]
    fn churn_leave_clamps_like_step_faults() {
        let plan = ChurnPlan::none().with_leave(0, 99);
        let st = FaultState::with_churn(&FaultPlan::none(), &plan);
        assert!(st.step_faults(0, 4, 5, 0).is_empty());
        assert_eq!(st.step_faults(0, 5, 5, 0), vec![StepFault::Kill]);
        // Resumed past the site: fires at the resume position instead.
        assert_eq!(st.step_faults(0, 7, 5, 7), vec![StepFault::Kill]);
    }

    #[test]
    fn seeded_churn_is_deterministic_and_valid() {
        let a = ChurnPlan::seeded(11, 6, 8, 40, 4);
        assert_eq!(a, ChurnPlan::seeded(11, 6, 8, 40, 4), "equal seeds yield equal plans");
        assert_ne!(a, ChurnPlan::seeded(12, 6, 8, 40, 4), "the plan depends on the seed");
        assert_eq!(a.events.len(), 6);
        a.validate(8).expect("seeded plans are membership-valid");
        for seed in 0..32 {
            ChurnPlan::seeded(seed, 10, 4, 20, 3).validate(4).expect("valid at any seed");
        }
    }

    #[test]
    fn churn_validate_rejects_bad_membership() {
        assert!(ChurnPlan::none().with_leave(4, 0).validate(4).is_err(), "leave of absent device");
        assert!(ChurnPlan::none().with_join(1, 2).validate(4).is_err(), "join of present device");
        assert!(ChurnPlan::none().with_join(4, 0).validate(4).is_err(), "0 is not a checkpoint id");
        let ok = ChurnPlan::none().with_leave(1, 3).with_join(1, 1).with_join(4, 2);
        ok.validate(4).expect("leave-then-rejoin plus a new device is valid");
        assert!(ok.has_joins());
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(FaultRng::new(1).below(10) < 10);
    }
}
