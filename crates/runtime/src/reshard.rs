//! Plan-independent snapshots and checkpoint resharding.
//!
//! A [`FullSnapshot`] is a checkpoint addressed by **original** tensor ids at
//! full (unsharded) shapes, which makes it independent of any partition plan:
//! it can be cut out of one plan's per-worker snapshots
//! ([`assemble_snapshot`]) and sliced back into another plan's shard layout
//! ([`scatter_snapshot`]) — the mechanism elastic recovery uses to carry
//! progress across a worker-count change.
//!
//! Why this is sound (DESIGN.md "Elastic recovery" has the full argument):
//! with [`BarrierUnit::OriginalSteps`](crate::BarrierUnit) barriers, every
//! original node is entirely before or entirely after a barrier on *every*
//! worker of *every* plan, because the generator expands each original node
//! contiguously ([`ShardedGraph::origin_of_node`]). The values a resumed
//! worker reads from its snapshot are exactly the shard tensors of original
//! tensors computed before the barrier (cross-expansion reads only ever go
//! through shard tensors), and each shard is by construction the region
//! slice of its original tensor — so gathering the shards with
//! [`copy_block`] and re-slicing them for the new plan reproduces, bit for
//! bit, the state an undisturbed run at the new width would have checkpointed
//! when resumed from this same snapshot.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use tofu_core::{Region, ShardedGraph};
use tofu_graph::TensorId;
use tofu_tensor::{Shape, Tensor};

use crate::checkpoint::{checkpoint_cuts, CheckpointPolicy, CheckpointStore, ResumePoint};
use crate::fault::FaultState;
use crate::{copy_block, Result, RunOptions, RunOutput, RuntimeError};

/// A plan-independent checkpoint: every original tensor the barrier covers
/// (leaves plus outputs of original nodes before it), at full shape, keyed
/// by **original** tensor id.
#[derive(Debug, Clone)]
pub struct FullSnapshot {
    /// 1-based checkpoint id; the barrier is original node `ckpt · every`.
    pub ckpt: usize,
    /// Original-step checkpoint cadence the id refers to.
    pub every: usize,
    /// Full-shape values keyed by original tensor id.
    pub tensors: BTreeMap<TensorId, Tensor>,
}

impl FullSnapshot {
    /// Total payload bytes of the snapshot.
    pub fn bytes(&self) -> u64 {
        self.tensors.values().map(|t| t.shape().bytes()).sum()
    }

    /// Round-trips every tensor through `via`'s shard layout: scatter into
    /// per-worker pieces, then gather them back to full shape. Because shard
    /// regions tile (or replicate over) each tensor's full extent, the result
    /// is bit-for-bit the original snapshot *for any plan* — shrink, grow, or
    /// same width. This is the invariant that lets elastic recovery carry one
    /// snapshot across arbitrary width changes, and the proptest suite pins
    /// it down over random width pairs in both directions.
    pub fn reshard_through(&self, via: &ShardedGraph) -> Result<FullSnapshot> {
        let mut tensors = BTreeMap::new();
        for (&t, full) in &self.tensors {
            let pieces: BTreeMap<TensorId, Tensor> =
                scatter_full(via, t, full)?.into_iter().collect();
            tensors.insert(t, gather_shards(via, t, &pieces)?);
        }
        Ok(FullSnapshot { ckpt: self.ckpt, every: self.every, tensors })
    }
}

/// The full (unsharded) extent implied by a tensor's per-worker regions:
/// the regions tile (or replicate over) `[0, max hi)` per dimension.
fn full_dims(regions: &[Region]) -> Vec<usize> {
    let rank = regions.first().map(|r| r.len()).unwrap_or(0);
    (0..rank)
        .map(|d| regions.iter().map(|r| r[d].1).max().unwrap_or(0).max(0) as usize)
        .collect()
}

/// Gathers the per-worker shard values of original tensor `t` (looked up in
/// `values`, a map over *sharded-graph* tensor ids) into the full original
/// value. Block-copy based — the fast path [`ShardedGraph::gather`]'s
/// per-element loop is not. Generic over the map's value type so both plain
/// tensors and the checkpoint store's `Arc`-shared payloads gather without
/// an intermediate deep copy.
pub fn gather_shards<V: std::borrow::Borrow<Tensor>>(
    sharded: &ShardedGraph,
    t: TensorId,
    values: &BTreeMap<TensorId, V>,
) -> Result<Tensor> {
    let regions = sharded
        .regions
        .get(&t)
        .ok_or_else(|| RuntimeError::Internal(format!("gather_shards: unknown tensor {t:?}")))?;
    let shards = sharded
        .shards
        .get(&t)
        .ok_or_else(|| RuntimeError::Internal(format!("gather_shards: {t:?} has no shards")))?;
    let mut full = Tensor::zeros(Shape::new(full_dims(regions)));
    for (w, region) in regions.iter().enumerate() {
        let piece = values
            .get(&shards[w])
            .ok_or_else(|| {
                RuntimeError::Internal(format!("gather_shards: worker {w} shard of {t:?} missing"))
            })?
            .borrow();
        let len: Vec<i64> = region.iter().map(|&(lo, hi)| hi - lo).collect();
        let expect: Vec<usize> = len.iter().map(|&l| l.max(0) as usize).collect();
        if piece.shape().dims() != expect.as_slice() {
            return Err(RuntimeError::Internal(format!(
                "gather_shards: worker {w} shard of {t:?} is {} but region wants {expect:?}",
                piece.shape()
            )));
        }
        let zeros = vec![0i64; region.len()];
        let lo: Vec<i64> = region.iter().map(|&(lo, _)| lo).collect();
        // Replicated workers hold bit-identical copies, so overlapping
        // writes are idempotent.
        copy_block(&mut full, piece, &zeros, &lo, &len);
    }
    Ok(full)
}

/// Slices a full original-tensor value into per-worker shard values for
/// `sharded`'s plan (the block-copy dual of [`gather_shards`]).
pub fn scatter_full(
    sharded: &ShardedGraph,
    t: TensorId,
    full: &Tensor,
) -> Result<Vec<(TensorId, Tensor)>> {
    let regions = sharded
        .regions
        .get(&t)
        .ok_or_else(|| RuntimeError::Internal(format!("scatter_full: unknown tensor {t:?}")))?;
    let shards = sharded
        .shards
        .get(&t)
        .ok_or_else(|| RuntimeError::Internal(format!("scatter_full: {t:?} has no shards")))?;
    let mut out = Vec::with_capacity(regions.len());
    for (w, region) in regions.iter().enumerate() {
        let len: Vec<i64> = region.iter().map(|&(lo, hi)| hi - lo).collect();
        let dims: Vec<usize> = len.iter().map(|&l| l.max(0) as usize).collect();
        let lo: Vec<i64> = region.iter().map(|&(lo, _)| lo).collect();
        let zeros = vec![0i64; region.len()];
        let mut piece = Tensor::zeros(Shape::new(dims));
        copy_block(&mut piece, full, &lo, &zeros, &len);
        out.push((shards[w], piece));
    }
    Ok(out)
}

/// Cuts a [`FullSnapshot`] out of one plan's per-worker checkpoint values:
/// every original tensor whose shards are all present (exactly the leaves
/// plus the outputs of original nodes before the barrier, when the barrier
/// is origin-aligned) is reassembled at full shape.
pub(crate) fn assemble_snapshot(
    sharded: &ShardedGraph,
    ckpt: usize,
    values: &[BTreeMap<TensorId, std::sync::Arc<Tensor>>],
    every: usize,
) -> Result<FullSnapshot> {
    // One merged view over all workers' snapshots; shard ids are disjoint
    // across workers except for values each worker holds of its own shards.
    // Snapshot payloads are `Arc`-shared, so the merge clones refcounts.
    let mut merged: BTreeMap<TensorId, std::sync::Arc<Tensor>> = BTreeMap::new();
    for per_worker in values {
        for (t, v) in per_worker {
            merged.entry(*t).or_insert_with(|| v.clone());
        }
    }
    let mut tensors = BTreeMap::new();
    for (&t, shards) in &sharded.shards {
        if shards.iter().all(|s| merged.contains_key(s)) {
            tensors.insert(t, gather_shards(sharded, t, &merged)?);
        }
    }
    Ok(FullSnapshot { ckpt, every, tensors })
}

/// Slices a [`FullSnapshot`] into a resume point for `sharded` (possibly a
/// different plan / worker count than the snapshot came from). The snapshot's
/// checkpoint id addresses the same original-graph barrier under any plan, so
/// the new plan's cuts for that id are the equivalent resume positions.
pub(crate) fn scatter_snapshot(
    snap: &FullSnapshot,
    sharded: &ShardedGraph,
) -> Result<ResumePoint> {
    let cuts = checkpoint_cuts(sharded, CheckpointPolicy::every_original(snap.every));
    let cut = cuts.get(snap.ckpt - 1).ok_or_else(|| {
        RuntimeError::Internal(format!(
            "snapshot checkpoint {} has no barrier in the new plan ({} cuts)",
            snap.ckpt,
            cuts.len()
        ))
    })?;
    let mut values: Vec<BTreeMap<TensorId, std::sync::Arc<Tensor>>> =
        vec![BTreeMap::new(); sharded.workers];
    for (&t, full) in &snap.tensors {
        for (w, (shard, piece)) in scatter_full(sharded, t, full)?.into_iter().enumerate() {
            values[w].insert(shard, std::sync::Arc::new(piece));
        }
    }
    Ok(ResumePoint { ckpt: snap.ckpt, cuts: cut.clone(), values })
}

/// Runs `sharded` resuming from a plan-independent snapshot: the snapshot is
/// resharded onto `sharded`'s layout and execution starts at the barrier.
/// This is both the resume path of elastic recovery and the way to construct
/// its bit-identity baseline — an undisturbed run at the surviving width
/// resumed from the equivalent checkpoint cut.
///
/// `feeds` is ignored when the snapshot covers the leaves (it always does
/// for snapshots assembled from a consistent checkpoint) and exists so call
/// sites read like [`run_with_options`](crate::run_with_options).
pub fn resume_from_snapshot(
    sharded: &ShardedGraph,
    feeds: &[(TensorId, Tensor)],
    opts: &RunOptions,
    snap: &FullSnapshot,
) -> Result<RunOutput> {
    crate::validate(sharded, opts)?;
    let _ = feeds;
    let faults = FaultState::new(&opts.faults);
    let store = Mutex::new(CheckpointStore::default());
    let point = scatter_snapshot(snap, sharded)?;
    let device_map: Vec<usize> = (0..sharded.workers).collect();
    match crate::run_attempt(sharded, &[], opts, &faults, &store, Some(&point), &device_map, None)? {
        crate::Attempt::Done(out) => Ok(out),
        crate::Attempt::Yielded { .. } => {
            Err(RuntimeError::Internal("attempt yielded without a yield barrier".into()))
        }
    }
}
