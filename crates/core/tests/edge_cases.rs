//! Edge-case coverage for `factorize` and the recursive splitter: degenerate
//! worker counts, primes, and worker counts exceeding every tensor
//! dimension must produce *typed* errors (or well-defined trivial plans) —
//! never panics.

mod common;

use tofu_core::recursive::{factorize, partition, PartitionOptions};
use tofu_core::{CoreError, SearchTuning};
use tofu_graph::{Attrs, Graph};
use tofu_tensor::Shape;

fn tiny_matmul(batch: usize, inner: usize, out: usize) -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new(vec![batch, inner]));
    let w = g.add_weight("w", Shape::new(vec![inner, out]));
    g.add_op("matmul", "fc", &[x, w], Attrs::new()).unwrap();
    g
}

#[test]
fn factorize_rejects_zero_workers() {
    assert!(matches!(factorize(0), Err(CoreError::BadWorkerCount(0))));
}

#[test]
fn factorize_one_is_the_empty_product() {
    assert_eq!(factorize(1).unwrap(), Vec::<usize>::new());
}

#[test]
fn factorize_primes_are_single_steps() {
    for p in [2usize, 3, 5, 7, 11, 13, 31] {
        assert_eq!(factorize(p).unwrap(), vec![p]);
    }
}

#[test]
fn factorize_orders_largest_first_and_preserves_product() {
    assert_eq!(factorize(12).unwrap(), vec![3, 2, 2]);
    assert_eq!(factorize(60).unwrap(), vec![5, 3, 2, 2]);
    for workers in 2usize..=64 {
        let f = factorize(workers).unwrap();
        assert_eq!(f.iter().product::<usize>(), workers, "product broken for {workers}");
        assert!(f.windows(2).all(|w| w[0] >= w[1]), "not sorted descending for {workers}");
    }
}

#[test]
fn one_worker_partition_is_the_trivial_plan() {
    let g = tiny_matmul(4, 4, 4);
    let plan = partition(&g, &PartitionOptions { workers: 1, ..Default::default() }).unwrap();
    assert!(plan.steps.is_empty());
    assert_eq!(plan.total_comm_bytes(), 0.0);
    // No step ⇒ every tensor stays whole.
    for t in 0..3 {
        let shape = Shape::new(vec![4, 4]);
        assert_eq!(plan.shard_shape(&shape, tofu_graph::TensorId(t)).dims(), &[4, 4]);
    }
}

#[test]
fn zero_workers_is_a_typed_error() {
    let g = tiny_matmul(4, 4, 4);
    let err = partition(&g, &PartitionOptions { workers: 0, ..Default::default() }).unwrap_err();
    assert!(matches!(err, CoreError::BadWorkerCount(0)));
}

#[test]
fn workers_exceeding_every_dimension_fail_with_no_strategy() {
    // 2×2 tensors across 64 workers: the recursion runs out of splittable
    // extents after the first step or two and must surface NoStrategy, not
    // panic or loop.
    let g = tiny_matmul(2, 2, 2);
    for tuning in [SearchTuning::default(), SearchTuning::reference()] {
        let err = partition(&g, &PartitionOptions { workers: 64, tuning, ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, CoreError::NoStrategy { .. }), "unexpected error {err:?}");
    }
}

#[test]
fn prime_worker_count_with_no_divisible_dimension_is_typed() {
    // Every dimension is a power of two; 7 divides none of them.
    let g = tiny_matmul(8, 16, 4);
    for tuning in [SearchTuning::default(), SearchTuning::reference()] {
        let err = partition(&g, &PartitionOptions { workers: 7, tuning, ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, CoreError::NoStrategy { .. }), "unexpected error {err:?}");
    }
}

#[test]
fn prime_worker_count_with_divisible_dimensions_partitions() {
    let g = tiny_matmul(14, 21, 7);
    let plan = partition(&g, &PartitionOptions { workers: 7, ..Default::default() }).unwrap();
    assert_eq!(plan.steps.len(), 1);
    assert_eq!(plan.steps[0].ways, 7);
}

#[test]
fn non_power_of_two_worker_count_runs_mixed_factor_steps() {
    // 12 = 3 · 2 · 2: first step is 3-way, then two 2-way steps.
    let g = tiny_matmul(24, 24, 24);
    let plan = partition(&g, &PartitionOptions { workers: 12, ..Default::default() }).unwrap();
    let ways: Vec<usize> = plan.steps.iter().map(|s| s.ways).collect();
    assert_eq!(ways, vec![3, 2, 2]);
}

#[test]
fn degenerate_worker_counts_never_panic_on_random_graphs() {
    for seed in 0..10u64 {
        let g = common::random_dag(seed, 6);
        for workers in [0usize, 1, 7, 13, 64] {
            // Any outcome is fine — Ok or a typed CoreError — as long as it
            // returns instead of panicking.
            let _ = partition(&g, &PartitionOptions { workers, ..Default::default() });
        }
    }
}
