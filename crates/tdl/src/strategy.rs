//! Automatic discovery of partition-n-reduce strategies (§4.2).
//!
//! A *basic strategy* parallelizes an operator across two workers. Case-1
//! splits an output dimension: each worker computes half of the output
//! (possibly reading overlapping "halo" input regions, as in convolution
//! along the pixel dimension). Case-2 splits a reduction dimension: each
//! worker computes a full-shape partial output and the two partials are
//! combined by the reducer (the "output reduction" strategy that ICML18
//! misses, §7.3).
//!
//! Discovery runs the symbolic region analysis twice per candidate variable —
//! once with the variable confined to the lower half of its range, once to
//! the upper half — and classifies every input tensor as *unused*,
//! *replicated*, or *split along one dimension with a symbolic halo*.

use crate::affine::AffineForm;
use crate::analysis::{access_regions, DimAccess, Region};
use crate::expr::{Reducer, TdlDesc, VarId, VarKind};
use crate::interval::SymInterval;
use crate::Result;

/// How a strategy produces the final output from the two workers' outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputPartition {
    /// Outputs are concatenated along `dim` (Case-1).
    Split {
        /// The concatenation dimension.
        dim: usize,
    },
    /// Outputs are full-shape partials combined element-wise by the reducer
    /// (Case-2).
    Reduce {
        /// The combining reducer.
        reducer: Reducer,
    },
}

impl OutputPartition {
    /// Returns the split dimension when this is a Case-1 strategy.
    pub fn split_dim(&self) -> Option<usize> {
        match self {
            OutputPartition::Split { dim } => Some(*dim),
            OutputPartition::Reduce { .. } => None,
        }
    }

    /// True for Case-2 (output-reduction) strategies.
    pub fn is_reduce(&self) -> bool {
        matches!(self, OutputPartition::Reduce { .. })
    }
}

/// The input region each worker needs under a basic strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum InputRequirement {
    /// The input is not read at all.
    Unused,
    /// Both workers read the entire input.
    Replicated,
    /// Worker `w` reads (roughly) its half of the input along `dim`, plus a
    /// halo of `halo` extra elements along that dimension shared with the
    /// neighbor (zero for clean splits, the filter-window extent for
    /// convolution's pixel dimension, etc.).
    Split {
        /// The split dimension of the input tensor.
        dim: usize,
        /// Symbolic halo width in elements along `dim`.
        halo: AffineForm,
    },
}

impl InputRequirement {
    /// Returns the split dimension for split requirements.
    pub fn split_dim(&self) -> Option<usize> {
        match self {
            InputRequirement::Split { dim, .. } => Some(*dim),
            _ => None,
        }
    }
}

/// One basic (2-worker) partition-n-reduce strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicStrategy {
    /// Human-readable identifier, e.g. `"split:x"` or `"reduce:ci"`.
    pub id: String,
    /// The partitioned index variable.
    pub var: VarId,
    /// How the output is assembled.
    pub output: OutputPartition,
    /// Requirement for each input tensor.
    pub inputs: Vec<InputRequirement>,
}

impl BasicStrategy {
    /// True when every input is either unused or cleanly split (no halo and
    /// no replication) — the cheapest kind of strategy.
    pub fn is_clean(&self) -> bool {
        self.inputs.iter().all(|r| match r {
            InputRequirement::Unused => true,
            InputRequirement::Replicated => false,
            InputRequirement::Split { halo, .. } => halo.is_zero(),
        })
    }
}

/// Discovers every basic strategy of a description.
///
/// Returns Case-1 strategies (one per splittable output dimension) followed
/// by Case-2 strategies (one per splittable reduction variable). Variables
/// that index an opaque function's result are excluded — the opaque
/// computation is indivisible, so e.g. `batch_cholesky` is only
/// partitionable along its batch dimension.
///
/// # Examples
///
/// ```
/// use tofu_tdl::{discover_strategies, DescBuilder, Reducer};
///
/// let mut b = DescBuilder::new("matmul", &[2, 2]);
/// let (i, j) = (b.output_var("i"), b.output_var("j"));
/// let k = b.reduce_var("k");
/// let body = b.input(0, &[i.at(), k.at()]) * b.input(1, &[k.at(), j.at()]);
/// let desc = b.build_reduce(Reducer::Sum, body).unwrap();
/// let strategies = discover_strategies(&desc).unwrap();
/// assert_eq!(strategies.len(), 3); // row, column, inner-product reduction
/// ```
pub fn discover_strategies(desc: &TdlDesc) -> Result<Vec<BasicStrategy>> {
    let n = desc.vars().len();
    let full_binding: Vec<SymInterval> = (0..n).map(SymInterval::full_var).collect();
    let full_regions = access_regions(desc, &full_binding)?;
    let unsplittable = desc.unsplittable_vars();

    let mut out = Vec::new();
    for v in 0..n {
        if unsplittable.contains(&v) {
            continue;
        }
        let kind = desc.vars()[v].kind;
        let mut b0 = full_binding.clone();
        b0[v] = SymInterval::lower_half_var(v);
        let mut b1 = full_binding.clone();
        b1[v] = SymInterval::upper_half_var(v);
        let r0 = access_regions(desc, &b0)?;
        let r1 = access_regions(desc, &b1)?;

        let mut inputs = Vec::with_capacity(desc.num_inputs());
        for t in 0..desc.num_inputs() {
            let req = match (&full_regions[t], &r0[t], &r1[t]) {
                (None, _, _) => InputRequirement::Unused,
                (Some(full), Some(w0), Some(w1)) => classify_input(full, w0, w1),
                // An input read under one half-binding but not the full
                // binding is impossible: the analysis is monotone.
                _ => InputRequirement::Replicated,
            };
            inputs.push(req);
        }

        let (id, output) = match kind {
            VarKind::Output => {
                (format!("split:{}", desc.vars()[v].name), OutputPartition::Split { dim: v })
            }
            VarKind::Reduce => {
                let reducer = desc
                    .reducer()
                    .expect("reduce variable implies reducer (enforced at build time)");
                (format!("reduce:{}", desc.vars()[v].name), OutputPartition::Reduce { reducer })
            }
        };
        out.push(BasicStrategy { id, var: v, output, inputs });
    }
    Ok(out)
}

/// Classifies one input tensor given its full-range footprint and the two
/// workers' footprints.
fn classify_input(full: &Region, w0: &Region, w1: &Region) -> InputRequirement {
    let affected: Vec<usize> = (0..full.0.len())
        .filter(|&k| !(w0.0[k].approx_eq(&full.0[k]) && w1.0[k].approx_eq(&full.0[k])))
        .collect();
    match affected.as_slice() {
        [] => InputRequirement::Replicated,
        [k] => {
            let (a, b) = match (&w0.0[*k], &w1.0[*k]) {
                (DimAccess::Interval(a), DimAccess::Interval(b)) => (a, b),
                // A Full footprint can never differ from a Full footprint,
                // so this arm is unreachable in practice; replicate to stay
                // sound.
                _ => return InputRequirement::Replicated,
            };
            // Order the two regions so `first` starts lower, then measure
            // their overlap: halo = max(0, first.hi - second.lo).
            let (first, second) =
                if a.lo().dominated_by(b.lo()) { (a, b) } else { (b, a) };
            let overlap = first.hi().sub(second.lo());
            let halo = if overlap.dominated_by(&AffineForm::zero()) {
                AffineForm::zero()
            } else {
                overlap.pointwise_max(&AffineForm::zero())
            };
            InputRequirement::Split { dim: *k, halo }
        }
        // The same input is disturbed along several dimensions (possible
        // only with multiple structurally different accesses, e.g.
        // A[i,j] + A[j,i]); fetching the whole tensor is the sound
        // fallback.
        _ => InputRequirement::Replicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{DescBuilder, Idx};

    fn conv1d() -> TdlDesc {
        let mut b = DescBuilder::new("conv1d", &[3, 3]);
        let (bb, co, x) = (b.output_var("b"), b.output_var("co"), b.output_var("x"));
        let (ci, dx) = (b.reduce_var("ci"), b.reduce_var("dx"));
        let body = b.input(0, &[bb.at(), ci.at(), x.at() + dx.at()])
            * b.input(1, &[ci.at(), co.at(), dx.at()]);
        b.build_reduce(Reducer::Sum, body).unwrap()
    }

    #[test]
    fn conv1d_has_five_strategies() {
        let s = discover_strategies(&conv1d()).unwrap();
        let ids: Vec<&str> = s.iter().map(|st| st.id.as_str()).collect();
        assert_eq!(ids, vec!["split:b", "split:co", "split:x", "reduce:ci", "reduce:dx"]);
    }

    #[test]
    fn conv1d_batch_split_matches_fig_2a() {
        // Fig. 2(a): each worker reads half of data (b dimension) and all of
        // filters.
        let s = &discover_strategies(&conv1d()).unwrap()[0];
        assert_eq!(s.output, OutputPartition::Split { dim: 0 });
        assert!(matches!(s.inputs[0], InputRequirement::Split { dim: 0, ref halo } if halo.is_zero()));
        assert_eq!(s.inputs[1], InputRequirement::Replicated);
    }

    #[test]
    fn conv1d_channel_reduce_matches_fig_2b() {
        // Fig. 2(b): splitting ci halves data along dim 1 and filters along
        // dim 0, with an output reduction.
        let s = &discover_strategies(&conv1d()).unwrap()[3];
        assert_eq!(s.id, "reduce:ci");
        assert!(s.output.is_reduce());
        assert!(matches!(s.inputs[0], InputRequirement::Split { dim: 1, ref halo } if halo.is_zero()));
        assert!(matches!(s.inputs[1], InputRequirement::Split { dim: 0, ref halo } if halo.is_zero()));
        assert!(s.is_clean());
    }

    #[test]
    fn conv1d_pixel_split_has_halo() {
        // Splitting x requires halo exchange: the overlap along data's dim 2
        // is the filter-window extent X_dx (variable 4).
        let s = &discover_strategies(&conv1d()).unwrap()[2];
        assert_eq!(s.id, "split:x");
        match &s.inputs[0] {
            InputRequirement::Split { dim: 2, halo } => {
                assert_eq!(halo.coeff(4), 1.0);
                assert_eq!(halo.coeff(2), 0.0);
            }
            other => panic!("unexpected requirement {other:?}"),
        }
        // Filters are replicated under the pixel split.
        assert_eq!(s.inputs[1], InputRequirement::Replicated);
        assert!(!s.is_clean());
    }

    #[test]
    fn matmul_three_classic_strategies() {
        let mut b = DescBuilder::new("matmul", &[2, 2]);
        let (i, j) = (b.output_var("i"), b.output_var("j"));
        let k = b.reduce_var("k");
        let body = b.input(0, &[i.at(), k.at()]) * b.input(1, &[k.at(), j.at()]);
        let desc = b.build_reduce(Reducer::Sum, body).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 3);
        // Row split: A by rows, B replicated.
        assert!(matches!(s[0].inputs[0], InputRequirement::Split { dim: 0, .. }));
        assert_eq!(s[0].inputs[1], InputRequirement::Replicated);
        // Column split: A replicated, B by columns.
        assert_eq!(s[1].inputs[0], InputRequirement::Replicated);
        assert!(matches!(s[1].inputs[1], InputRequirement::Split { dim: 1, .. }));
        // Inner-product reduction: A by columns, B by rows, reduce outputs.
        assert!(s[2].output.is_reduce());
        assert!(matches!(s[2].inputs[0], InputRequirement::Split { dim: 1, .. }));
        assert!(matches!(s[2].inputs[1], InputRequirement::Split { dim: 0, .. }));
        assert!(s[2].is_clean());
    }

    #[test]
    fn elementwise_splits_every_dim_cleanly() {
        let mut b = DescBuilder::new("add", &[2, 2]);
        let (i, j) = (b.output_var("i"), b.output_var("j"));
        let body = b.input(0, &[i.at(), j.at()]) + b.input(1, &[i.at(), j.at()]);
        let desc = b.build(body).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 2);
        for (d, st) in s.iter().enumerate() {
            assert_eq!(st.output, OutputPartition::Split { dim: d });
            for inp in &st.inputs {
                assert!(matches!(inp, InputRequirement::Split { dim, halo } if *dim == d && halo.is_zero()));
            }
            assert!(st.is_clean());
        }
    }

    #[test]
    fn batch_cholesky_only_batch_dim() {
        let mut b = DescBuilder::new("batch_cholesky", &[3]);
        let (bb, i, j) = (b.output_var("b"), b.output_var("i"), b.output_var("j"));
        let slice = b.input(0, &[bb.at(), Idx::full(), Idx::full()]);
        let body = b.opaque("cholesky", vec![slice], &[i, j]);
        let desc = b.build(body).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].id, "split:b");
        assert!(matches!(s[0].inputs[0], InputRequirement::Split { dim: 0, .. }));
    }

    #[test]
    fn broadcast_input_is_replicated_or_split() {
        // out[i, j] = X[i, j] + bias[j].
        let mut b = DescBuilder::new("bias_add", &[2, 1]);
        let (i, j) = (b.output_var("i"), b.output_var("j"));
        let body = b.input(0, &[i.at(), j.at()]) + b.input(1, &[j.at()]);
        let desc = b.build(body).unwrap();
        let s = discover_strategies(&desc).unwrap();
        // Splitting i: bias fully replicated.
        assert_eq!(s[0].inputs[1], InputRequirement::Replicated);
        // Splitting j: bias split along its only dim.
        assert!(matches!(s[1].inputs[1], InputRequirement::Split { dim: 0, .. }));
    }

    #[test]
    fn unused_input_is_classified_unused() {
        let mut b = DescBuilder::new("first", &[1, 1]);
        let i = b.output_var("i");
        let body = b.input(0, &[i.at()]);
        let desc = b.build(body).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s[0].inputs[1], InputRequirement::Unused);
    }

    #[test]
    fn strided_access_still_splits_cleanly() {
        // out[i] = A[2*i]: worker halves map to disjoint strided halves.
        let mut b = DescBuilder::new("downsample", &[1]);
        let i = b.output_var("i");
        let body = b.input(0, &[i.at() * 2]);
        let desc = b.build(body).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert!(matches!(s[0].inputs[0], InputRequirement::Split { dim: 0, ref halo } if halo.is_zero()));
    }

    #[test]
    fn symmetric_access_falls_back_to_replication() {
        // out[i, j] = A[i, j] + A[j, i] disturbs both dims of A when i splits.
        let mut b = DescBuilder::new("symmetrize", &[2]);
        let (i, j) = (b.output_var("i"), b.output_var("j"));
        let body = b.input(0, &[i.at(), j.at()]) + b.input(0, &[j.at(), i.at()]);
        let desc = b.build(body).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s[0].inputs[0], InputRequirement::Replicated);
    }
}
