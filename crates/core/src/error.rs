//! Error type for the partitioner.

use std::fmt;

/// Errors produced while searching for or applying a partition plan.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// A node's operator has no TDL description, so it cannot be partitioned
    /// (the paper's fundamental limitation, §9).
    NotDescribable {
        /// Node name.
        node: String,
        /// Operator name.
        op: String,
    },
    /// A node has no viable strategy under the current constraints (e.g. no
    /// dimension divisible by the requested number of workers).
    NoStrategy {
        /// Node name.
        node: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The dynamic-programming state space exceeded its safety bound.
    SearchSpaceExceeded {
        /// Number of states reached.
        states: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The requested worker count cannot be factorized/used.
    BadWorkerCount(usize),
    /// An error from the graph layer.
    Graph(tofu_graph::GraphError),
    /// An error from TDL analysis.
    Tdl(tofu_tdl::TdlError),
    /// Free-form internal invariant violation.
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotDescribable { node, op } => {
                write!(f, "node {node:?} uses operator {op:?} with no TDL description")
            }
            CoreError::NoStrategy { node, detail } => {
                write!(f, "node {node:?} has no viable partition strategy: {detail}")
            }
            CoreError::SearchSpaceExceeded { states, bound } => {
                write!(f, "DP state space exceeded: {states} states > bound {bound}")
            }
            CoreError::BadWorkerCount(k) => write!(f, "cannot partition across {k} workers"),
            CoreError::Graph(e) => write!(f, "graph: {e}"),
            CoreError::Tdl(e) => write!(f, "tdl: {e}"),
            CoreError::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<tofu_graph::GraphError> for CoreError {
    fn from(e: tofu_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<tofu_tdl::TdlError> for CoreError {
    fn from(e: tofu_tdl::TdlError) -> Self {
        CoreError::Tdl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::NotDescribable { node: "n".into(), op: "cholesky".into() };
        assert!(e.to_string().contains("cholesky"));
        assert!(CoreError::BadWorkerCount(0).to_string().contains('0'));
        assert!(CoreError::SearchSpaceExceeded { states: 10, bound: 5 }.to_string().contains("10"));
    }
}
