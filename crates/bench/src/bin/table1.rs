//! Table 1: partition-search time for 8 workers.
//!
//! | algorithm            | WResNet-152 | RNN-10 |
//! |----------------------|-------------|--------|
//! | Original DP [14]     | n/a         | n/a    |
//! | DP with coarsening   | 8 hours     | >24 h  |
//! | Using recursion      | 8.3 s       | 66.6 s |
//!
//! The "DP with coarsening" row (the flat, non-recursive multi-dimensional
//! search) is *extrapolated* from its configuration count and a measured
//! per-configuration evaluation rate — running it for real is exactly the
//! multi-hour blowup the paper reports. The recursion row is measured.

use std::time::Duration;

use tofu_core::{coarsen, flat, recursive, ShapeView};
use tofu_models::{rnn, wresnet, RnnConfig, WResNetConfig};

fn human(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s > 48.0 * 3600.0 {
        format!(">{:.0} hours", (s / 3600.0).min(9999.0))
    } else if s > 3600.0 {
        format!("{:.1} hours", s / 3600.0)
    } else if s > 60.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.1} s")
    }
}

fn main() {
    println!("Table 1: time to search for the best partition (8 workers)\n");
    println!(
        "{:<22} {:>16} {:>16}  (paper: WResNet-152 / RNN-10)",
        "algorithm", "WResNet-152", "RNN-10"
    );

    let wres = wresnet(&WResNetConfig {
        layers: 152,
        width: 10,
        batch: 8,
        ..Default::default()
    })
    .expect("wresnet builds");
    let rnn10 = rnn(&RnnConfig {
        layers: 10,
        hidden: 4096,
        batch: 256,
        steps: 20,
        embed: 1024,
        vocab: 4096,
        with_updates: true,
    })
    .expect("rnn builds");

    println!("{:<22} {:>16} {:>16}  (n/a — the coarsened graphs are not plain chains)",
        "Original DP [14]", "n/a", "n/a");

    // Flat DP: configuration-count extrapolation.
    let mut flat_times = Vec::new();
    for model in [&wres, &rnn10] {
        let cg = coarsen(&model.graph);
        let view = ShapeView::from_graph(&model.graph);
        let est = flat::estimate_flat_dp_time(
            &model.graph,
            &cg,
            &view,
            8,
            Duration::from_millis(200),
        );
        flat_times.push((est.configs, est.estimated));
    }
    println!(
        "{:<22} {:>16} {:>16}  (paper: 8 hours / >24 hours)",
        "DP with coarsening",
        human(flat_times[0].1),
        human(flat_times[1].1)
    );
    println!(
        "{:<22} {:>13}cfg {:>13}cfg",
        "  (configurations)", format!("{:.1e}", flat_times[0].0 as f64),
        format!("{:.1e}", flat_times[1].0 as f64)
    );

    // Recursion: measured.
    let mut rec_times = Vec::new();
    for model in [&wres, &rnn10] {
        let plan = recursive::partition(
            &model.graph,
            &recursive::PartitionOptions { workers: 8, ..Default::default() },
        )
        .expect("partition succeeds");
        rec_times.push(plan.search_time);
    }
    println!(
        "{:<22} {:>16} {:>16}  (paper: 8.3 s / 66.6 s)",
        "Using recursion",
        human(rec_times[0]),
        human(rec_times[1])
    );
}
