//! CPU reference executor.
//!
//! Executes a graph node-by-node with the naive kernels from `tofu-tensor`.
//! Its only job is validation: the cross-crate tests run the original graph
//! and the Tofu-partitioned graph on the same inputs and assert the results
//! match — the correctness claim behind "the same program written for a
//! single device can also be run across devices without changes" (§2).

use std::collections::BTreeMap;

use tofu_tensor::{Conv1dParams, Conv2dParams, PoolKind, PoolParams, ReduceKind, Shape, Tensor};

use crate::attrs::Attrs;
use crate::graph::{Graph, NodeId, TensorId, TensorKind};
use crate::ops::elementwise::{BINARY_KERNELS, SCALAR_KERNELS, UNARY_KERNELS};
use crate::registry::GraphError;
use crate::Result;

/// Executes graphs on the CPU.
///
/// # Examples
///
/// ```
/// use tofu_graph::{Attrs, Executor, Graph};
/// use tofu_tensor::{Shape, Tensor};
///
/// let mut g = Graph::new();
/// let x = g.add_input("x", Shape::new(vec![2, 2]));
/// let y = g.add_op("relu", "r", &[x], Attrs::new()).unwrap();
/// let mut exec = Executor::new();
/// exec.feed(x, Tensor::from_vec(Shape::new(vec![2, 2]), vec![-1., 2., -3., 4.]).unwrap());
/// let out = exec.run(&g).unwrap();
/// assert_eq!(out[&y].data(), &[0., 2., 0., 4.]);
/// ```
#[derive(Debug, Default)]
pub struct Executor {
    feeds: BTreeMap<TensorId, Tensor>,
}

impl Executor {
    /// Creates an executor with no fed tensors.
    pub fn new() -> Executor {
        Executor::default()
    }

    /// Feeds a value for an input or weight tensor.
    pub fn feed(&mut self, t: TensorId, value: Tensor) {
        self.feeds.insert(t, value);
    }

    /// Runs every node, returning the value of every tensor.
    ///
    /// # Errors
    ///
    /// Fails when an input/weight is not fed, a fed value's shape mismatches
    /// the declared shape, or an operator has no CPU kernel.
    pub fn run(&self, g: &Graph) -> Result<BTreeMap<TensorId, Tensor>> {
        let mut values: BTreeMap<TensorId, Tensor> = BTreeMap::new();
        for t in g.tensor_ids() {
            let meta = g.tensor(t);
            match meta.kind {
                TensorKind::Input | TensorKind::Weight => {
                    let v = self.feeds.get(&t).ok_or_else(|| {
                        GraphError::Exec(format!("tensor {:?} not fed", meta.name))
                    })?;
                    if v.shape() != &meta.shape {
                        return Err(GraphError::Exec(format!(
                            "fed shape {} for tensor {:?} declared {}",
                            v.shape(),
                            meta.name,
                            meta.shape
                        )));
                    }
                    values.insert(t, v.clone());
                }
                TensorKind::Intermediate => {}
            }
        }
        for id in g.node_ids() {
            let node = g.node(id);
            let inputs: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|t| {
                    values.get(t).ok_or_else(|| {
                        GraphError::Exec(format!(
                            "node {:?} reads unevaluated tensor {:?}",
                            node.name,
                            g.tensor(*t).name
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            let out = execute_node(g, id, &inputs)?;
            values.insert(node.output, out);
        }
        Ok(values)
    }
}

/// Executes one node of `g` on already-resolved input values — the per-node
/// entry a multi-worker runtime drives directly ([`Executor::run`] is the
/// serial loop over it). Inputs are passed positionally; the output shape is
/// checked against the graph's inferred shape.
pub fn execute_node(g: &Graph, id: NodeId, inputs: &[&Tensor]) -> Result<Tensor> {
    let node = g.node(id);
    let out = dispatch(&node.op, inputs, &node.attrs, &g.tensor(node.output).shape)
        .map_err(|e| GraphError::Exec(format!("node {:?} (op {}): {e}", node.name, node.op)))?;
    if out.shape() != &g.tensor(node.output).shape {
        return Err(GraphError::Exec(format!(
            "node {:?} produced shape {} but {} was inferred",
            node.name,
            out.shape(),
            g.tensor(node.output).shape
        )));
    }
    Ok(out)
}

fn conv1d_params(attrs: &Attrs) -> Conv1dParams {
    Conv1dParams {
        stride: attrs.int_or("stride", 1).max(1) as usize,
        pad: attrs.int_or("pad", 0).max(0) as usize,
    }
}

fn conv2d_params(attrs: &Attrs) -> Conv2dParams {
    Conv2dParams {
        stride: attrs.int_or("stride", 1).max(1) as usize,
        pad: attrs.int_or("pad", 0).max(0) as usize,
    }
}

fn pool_params(attrs: &Attrs) -> PoolParams {
    let window = attrs.int_or("window", 2).max(1) as usize;
    PoolParams {
        kind: if attrs.str("mode") == Some("avg") { PoolKind::Avg } else { PoolKind::Max },
        window,
        stride: attrs.int_or("stride", window as i64).max(1) as usize,
    }
}

/// Lifts a rank-3 conv1d operand to rank-4 (height 1) so the conv2d kernels
/// can serve both.
fn lift_1d(t: &Tensor) -> Result<Tensor> {
    let d = t.shape().dims();
    Ok(t.reshape(Shape::new(vec![d[0], d[1], 1, d[2]]))?)
}

fn drop_h(t: &Tensor) -> Result<Tensor> {
    let d = t.shape().dims();
    Ok(t.reshape(Shape::new(vec![d[0], d[1], d[3]]))?)
}

/// Layer-norm variance epsilon — fixed, so forward/backward kernels agree.
const LN_EPS: f32 = 1e-5;

/// Normalized axis of the softmax/layer-norm family: `axis` attr, defaulting
/// to the last dimension.
fn norm_axis(attrs: &Attrs, rank: usize) -> usize {
    attrs.int_or("axis", rank as i64 - 1).max(0) as usize
}

/// Slice head `h` of a rank-3 tensor down to its rank-2 matrix.
fn head2(t: &Tensor, h: usize) -> Result<Tensor> {
    let s = t.slice(0, h, h + 1)?;
    let dims = s.shape().dims()[1..].to_vec();
    Ok(s.reshape(Shape::new(dims))?)
}

/// Lift a rank-2 matrix to rank 3 with a unit leading (head) dimension.
fn lift3(m: &Tensor) -> Result<Tensor> {
    let mut dims = vec![1];
    dims.extend_from_slice(m.shape().dims());
    Ok(m.reshape(Shape::new(dims))?)
}

/// `Σ_h f(A[h], B[h])` — the head-contraction shared by `unproj_heads` and
/// `proj_heads_grad_x`.
fn head_sum(
    a3: &Tensor,
    b3: &Tensor,
    f: impl Fn(&Tensor, &Tensor) -> Result<Tensor>,
) -> Result<Tensor> {
    let heads = a3.shape().dim(0);
    let mut acc: Option<Tensor> = None;
    for h in 0..heads {
        let term = f(&head2(a3, h)?, &head2(b3, h)?)?;
        acc = Some(match acc {
            None => term,
            Some(prev) => prev.add(&term)?,
        });
    }
    acc.ok_or_else(|| GraphError::Exec("head contraction over zero heads".into()))
}

fn dispatch(op: &str, ins: &[&Tensor], attrs: &Attrs, out_shape: &Shape) -> Result<Tensor> {
    // Element-wise families first.
    if let Some(&(_, f)) = UNARY_KERNELS.iter().find(|(n, _)| *n == op) {
        return Ok(ins[0].map(f));
    }
    if let Some(&(_, f)) = BINARY_KERNELS.iter().find(|(n, _)| *n == op) {
        return Ok(ins[0].zip(ins[1], f)?);
    }
    if let Some(&(_, f)) = SCALAR_KERNELS.iter().find(|(n, _)| *n == op) {
        let k = attrs.float("scalar").unwrap_or(0.0) as f32;
        return Ok(ins[0].map(|x| f(x, k)));
    }
    match op {
        "identity" | "copy" => Ok(ins[0].clone()),
        "add_n" => {
            let mut acc = ins[0].clone();
            for t in &ins[1..] {
                acc = acc.add(t)?;
            }
            Ok(acc)
        }
        "matmul" => Ok(ins[0].matmul(ins[1])?),
        "matmul_tn" => Ok(ins[0].matmul_tn(ins[1])?),
        "matmul_nt" => Ok(ins[0].matmul_nt(ins[1])?),
        "transpose" => Ok(ins[0].transpose()?),
        // The dedicated rank-3 kernels accumulate in the same ascending-k
        // order as the per-batch slice + matmul loop they replaced, so
        // results are bit-identical.
        "batch_matmul" => Ok(ins[0].matmul_b(ins[1])?),
        "batch_matmul_tn" => Ok(ins[0].matmul_b_tn(ins[1])?),
        "batch_matmul_nt" => Ok(ins[0].matmul_b_nt(ins[1])?),
        "proj_heads" => {
            // out[h] = X · W[h]; per-head rank-2 matmuls over the shard's
            // heads, so every TDL split (h, n, k, reduce:d) runs unchanged.
            let heads = ins[1].shape().dim(0);
            let mut parts = Vec::with_capacity(heads);
            for h in 0..heads {
                parts.push(lift3(&ins[0].matmul(&head2(ins[1], h)?)?)?);
            }
            Ok(Tensor::concat(&parts, 0)?)
        }
        "unproj_heads" => {
            // out = Σ_h C[h] · W[h].
            head_sum(ins[0], ins[1], |c, w| Ok(c.matmul(w)?))
        }
        "proj_heads_grad_x" => {
            // dX = Σ_h dO[h] · W[h]ᵀ.
            head_sum(ins[0], ins[1], |d, w| Ok(d.matmul_nt(w)?))
        }
        "proj_heads_grad_w" => {
            // dW[h] = Xᵀ · dO[h].
            let heads = ins[1].shape().dim(0);
            let mut parts = Vec::with_capacity(heads);
            for h in 0..heads {
                parts.push(lift3(&ins[0].matmul_tn(&head2(ins[1], h)?)?)?);
            }
            Ok(Tensor::concat(&parts, 0)?)
        }
        "unproj_heads_grad_c" => {
            // dC[h] = dY · W[h]ᵀ.
            let heads = ins[1].shape().dim(0);
            let mut parts = Vec::with_capacity(heads);
            for h in 0..heads {
                parts.push(lift3(&ins[0].matmul_nt(&head2(ins[1], h)?)?)?);
            }
            Ok(Tensor::concat(&parts, 0)?)
        }
        "unproj_heads_grad_w" => {
            // dW[h] = C[h]ᵀ · dY.
            let heads = ins[0].shape().dim(0);
            let mut parts = Vec::with_capacity(heads);
            for h in 0..heads {
                parts.push(lift3(&head2(ins[0], h)?.matmul_tn(ins[1])?)?);
            }
            Ok(Tensor::concat(&parts, 0)?)
        }
        "conv1d" => Ok(ins[0].conv1d(ins[1], conv1d_params(attrs))?),
        "conv1d_bwd_data" => {
            let p = conv1d_params(attrs);
            let og = lift_1d(ins[0])?;
            let f = {
                let d = ins[1].shape().dims();
                ins[1].reshape(Shape::new(vec![d[0], d[1], 1, d[2]]))?
            };
            let data_shape = Shape::new(vec![
                out_shape.dim(0),
                out_shape.dim(1),
                1,
                out_shape.dim(2),
            ]);
            let g = Tensor::conv2d_backward_data(
                &og,
                &f,
                &data_shape,
                Conv2dParams { stride: p.stride, pad: p.pad },
            )?;
            drop_h(&g)
        }
        "conv1d_bwd_filter" => {
            let p = conv1d_params(attrs);
            let og = lift_1d(ins[0])?;
            let data = lift_1d(ins[1])?;
            let fshape =
                Shape::new(vec![out_shape.dim(0), out_shape.dim(1), 1, out_shape.dim(2)]);
            let g = Tensor::conv2d_backward_filter(
                &og,
                &data,
                &fshape,
                Conv2dParams { stride: p.stride, pad: p.pad },
            )?;
            drop_h(&g)
        }
        "conv2d" => Ok(ins[0].conv2d(ins[1], conv2d_params(attrs))?),
        "conv2d_bwd_data" => {
            Ok(Tensor::conv2d_backward_data(ins[0], ins[1], out_shape, conv2d_params(attrs))?)
        }
        "conv2d_bwd_filter" => {
            Ok(Tensor::conv2d_backward_filter(ins[0], ins[1], out_shape, conv2d_params(attrs))?)
        }
        "pool2d" => Ok(ins[0].pool2d(pool_params(attrs))?),
        "pool2d_grad" => pool2d_grad(ins[0], ins[1], pool_params(attrs)),
        "global_avg_pool" => Ok(ins[0].global_avg_pool()?),
        "gap_grad" => {
            // dIn[b, c, h, w] = dOut[b, c] / (H·W).
            let (og, data) = (ins[0], ins[1]);
            let (h, w) = (data.shape().dim(2), data.shape().dim(3));
            let norm = (h * w) as f32;
            let mut out = Tensor::zeros(data.shape().clone());
            for (flat, idx) in data.shape().clone().indices().enumerate() {
                out.data_mut()[flat] = og.at(&[idx[0], idx[1]]) / norm;
            }
            Ok(out)
        }
        "bias_add" => {
            Ok(ins[0].broadcast_add(ins[1], attrs.int_or("axis", 1) as usize)?)
        }
        "mul_bcast" => {
            let axis = attrs.int_or("axis", 1) as usize;
            let extent = ins[0].shape().dim(axis);
            let inner: usize = ins[0].shape().dims()[axis + 1..].iter().product();
            let mut out = ins[0].clone();
            for (flat, v) in out.data_mut().iter_mut().enumerate() {
                *v *= ins[1].data()[(flat / inner) % extent];
            }
            Ok(out)
        }
        "reduce_to_axis" => reduce_all_but_axis(ins[0], attrs.int_or("axis", 1) as usize, None),
        "mul_reduce" => {
            let prod = ins[0].mul(ins[1])?;
            reduce_all_but_axis(&prod, attrs.int_or("axis", 1) as usize, None)
        }
        "sum_axis" => Ok(ins[0].reduce_axis(attrs.int_or("axis", 1) as usize, ReduceKind::Sum)?),
        "max_axis" => Ok(ins[0].reduce_axis(attrs.int_or("axis", 1) as usize, ReduceKind::Max)?),
        "min_axis" => Ok(ins[0].reduce_axis(attrs.int_or("axis", 1) as usize, ReduceKind::Min)?),
        "prod_axis" => Ok(ins[0].reduce_axis(attrs.int_or("axis", 1) as usize, ReduceKind::Prod)?),
        "softmax" => {
            let axis = norm_axis(attrs, ins[0].shape().rank());
            Ok(ins[0].softmax_axis(axis)?)
        }
        "softmax_grad" => {
            let axis = norm_axis(attrs, ins[0].shape().rank());
            Ok(ins[0].softmax_grad_axis(ins[1], axis)?)
        }
        "layer_norm" => {
            let axis = norm_axis(attrs, ins[0].shape().rank());
            Ok(ins[0].layer_norm_axis(ins[1], ins[2], axis, LN_EPS)?)
        }
        "layer_norm_xhat" => {
            let axis = norm_axis(attrs, ins[0].shape().rank());
            Ok(ins[0].layer_norm_xhat_axis(axis, LN_EPS)?)
        }
        "layer_norm_x_grad" => {
            let axis = norm_axis(attrs, ins[0].shape().rank());
            Ok(ins[0].layer_norm_x_grad_axis(ins[1], ins[2], axis, LN_EPS)?)
        }
        "sum_all" => Ok(Tensor::scalar(ins[0].sum_all())),
        "bcast_like" => Ok(Tensor::full(ins[1].shape().clone(), ins[0].data()[0])),
        "softmax_ce" => {
            // Summed (not mean) cross-entropy so that batch-split partial
            // losses combine exactly by addition under output reduction.
            let labels: Vec<usize> = ins[1].data().iter().map(|&l| l as usize).collect();
            let mean = ins[0].softmax_cross_entropy(&labels)?;
            Ok(Tensor::scalar(mean * ins[0].shape().dim(0) as f32))
        }
        "softmax_ce_grad" => {
            // softmax(logits) - onehot(labels); gradient of the *summed*
            // cross-entropy (see "softmax_ce").
            let probs = ins[0].softmax()?;
            let c = probs.shape().dim(1);
            let mut out = probs;
            for (row, &label) in ins[1].data().iter().enumerate() {
                let label = label as usize;
                if label < c {
                    out.data_mut()[row * c + label] -= 1.0;
                }
            }
            Ok(out)
        }
        "scale_shift" => {
            let axis = attrs.int_or("axis", 1) as usize;
            let extent = ins[0].shape().dim(axis);
            let inner: usize = ins[0].shape().dims()[axis + 1..].iter().product();
            let mut out = ins[0].clone();
            for (flat, v) in out.data_mut().iter_mut().enumerate() {
                let c = (flat / inner) % extent;
                *v = *v * ins[1].data()[c] + ins[2].data()[c];
            }
            Ok(out)
        }
        "slice_axis" => {
            let axis = attrs.int_or("axis", 0) as usize;
            let begin = attrs.int_or("begin", 0) as usize;
            let end = attrs.int_or("end", ins[0].shape().dim(axis) as i64) as usize;
            Ok(ins[0].slice(axis, begin, end)?)
        }
        "concat" => {
            let axis = attrs.int_or("axis", 0) as usize;
            let owned: Vec<Tensor> = ins.iter().map(|t| (*t).clone()).collect();
            Ok(Tensor::concat(&owned, axis)?)
        }
        "pad" => {
            let axis = attrs.int_or("axis", 0) as usize;
            let before = attrs.int_or("before", 0) as usize;
            let after = attrs.int_or("after", 0) as usize;
            let mut parts = Vec::new();
            if before > 0 {
                parts.push(Tensor::zeros(ins[0].shape().with_dim(axis, before)?));
            }
            parts.push(ins[0].clone());
            if after > 0 {
                parts.push(Tensor::zeros(ins[0].shape().with_dim(axis, after)?));
            }
            Ok(Tensor::concat(&parts, axis)?)
        }
        "flip" => {
            let axis = attrs.int_or("axis", 0) as usize;
            let n = ins[0].shape().dim(axis);
            let mut parts = Vec::with_capacity(n);
            for i in (0..n).rev() {
                parts.push(ins[0].slice(axis, i, i + 1)?);
            }
            Ok(Tensor::concat(&parts, axis)?)
        }
        "repeat" => {
            let axis = attrs.int_or("axis", 0) as usize;
            let k = attrs.int_or("repeats", 2).max(1) as usize;
            let n = ins[0].shape().dim(axis);
            let mut parts = Vec::with_capacity(n * k);
            for i in 0..n {
                let s = ins[0].slice(axis, i, i + 1)?;
                for _ in 0..k {
                    parts.push(s.clone());
                }
            }
            Ok(Tensor::concat(&parts, axis)?)
        }
        "tile" => {
            let axis = attrs.int_or("axis", 0) as usize;
            let k = attrs.int_or("repeats", 2).max(1) as usize;
            let parts = vec![ins[0].clone(); k];
            Ok(Tensor::concat(&parts, axis)?)
        }
        "sgd_update" => {
            let lr = attrs.float("lr").unwrap_or(0.01) as f32;
            Ok(ins[0].zip(ins[1], |w, g| w - lr * g)?)
        }
        "sgd_momentum_update" | "adagrad_update" => {
            let lr = attrs.float("lr").unwrap_or(0.01) as f32;
            Ok(ins[0].zip(ins[1], |w, g| w - lr * g)?)
        }
        "adam_update" => {
            // Simplified Adam step: the history tensors ride along as inputs
            // 2 and 3 but the update is computed from fresh moments.
            let lr = attrs.float("lr").unwrap_or(0.001) as f32;
            let eps = 1e-8f32;
            Ok(ins[0].zip(ins[1], move |w, g| w - lr * g / (g.abs() + eps))?)
        }
        "batch_cholesky" => batch_cholesky(ins[0]),
        "batch_inverse" => batch_inverse(ins[0]),
        "cholesky" => {
            let d = ins[0].shape().dims();
            let lifted = ins[0].reshape(Shape::new(vec![1, d[0], d[1]]))?;
            let out = batch_cholesky(&lifted)?;
            Ok(out.reshape(ins[0].shape().clone())?)
        }
        "multi_fetch" => multi_fetch(ins, attrs),
        other => Err(GraphError::Exec(format!("no CPU kernel for operator {other:?}"))),
    }
}

/// The fused remote-gather kernel of §6: assembles an output region from
/// pieces of several source tensors in one launch, zero-filling anything not
/// covered (which is how partitioned convolutions materialize padding).
///
/// Attribute layout: `out_dims` gives the output shape (rank r); `pieces` is
/// a flat integer list with 3·r entries per piece — `src_begin[r]`,
/// `dst_begin[r]`, `len[r]` — where piece `i` reads from input `i`.
fn multi_fetch(ins: &[&Tensor], attrs: &Attrs) -> Result<Tensor> {
    let out_dims: Vec<usize> = attrs
        .ints("out_dims")
        .ok_or_else(|| GraphError::Exec("multi_fetch missing out_dims".into()))?
        .iter()
        .map(|&d| d as usize)
        .collect();
    let rank = out_dims.len();
    let pieces = attrs.ints("pieces").unwrap_or(&[]);
    if pieces.len() != ins.len() * 3 * rank {
        return Err(GraphError::Exec(format!(
            "multi_fetch expects {} piece integers, got {}",
            ins.len() * 3 * rank,
            pieces.len()
        )));
    }
    let mut out = Tensor::zeros(Shape::new(out_dims));
    for (i, src) in ins.iter().enumerate() {
        let desc = &pieces[i * 3 * rank..(i + 1) * 3 * rank];
        let src_begin = &desc[..rank];
        let dst_begin = &desc[rank..2 * rank];
        let len = &desc[2 * rank..];
        copy_block_rows(&mut out, src, src_begin, dst_begin, len);
    }
    Ok(out)
}

/// Moves the `len`-sized block at `src_begin` of `src` to `dst_begin` of
/// `dst`, one contiguous innermost row per `copy_from_slice` — the blocked
/// core of [`multi_fetch`], replacing its former per-element index walk.
/// Both tensors are dense row-major; the block must lie within bounds.
fn copy_block_rows(dst: &mut Tensor, src: &Tensor, src_begin: &[i64], dst_begin: &[i64], len: &[i64]) {
    let rank = len.len();
    if rank == 0 {
        dst.data_mut()[0] = src.data()[0];
        return;
    }
    if len.iter().any(|&l| l <= 0) {
        return;
    }
    let row = len[rank - 1] as usize;
    let src_strides = src.shape().strides();
    let dst_strides = dst.shape().strides();
    let mut src_off: usize =
        src_begin.iter().zip(&src_strides).map(|(&b, &s)| b as usize * s).sum();
    let mut dst_off: usize =
        dst_begin.iter().zip(&dst_strides).map(|(&b, &s)| b as usize * s).sum();
    let mut idx = vec![0usize; rank - 1];
    'rows: loop {
        dst.data_mut()[dst_off..dst_off + row]
            .copy_from_slice(&src.data()[src_off..src_off + row]);
        // Odometer over the outer dimensions.
        let mut d = rank - 1;
        while d > 0 {
            d -= 1;
            idx[d] += 1;
            src_off += src_strides[d];
            dst_off += dst_strides[d];
            if idx[d] < len[d] as usize {
                continue 'rows;
            }
            idx[d] = 0;
            src_off -= src_strides[d] * len[d] as usize;
            dst_off -= dst_strides[d] * len[d] as usize;
        }
        break;
    }
}

/// Sums a tensor over every axis except `axis`, yielding a rank-1 tensor.
fn reduce_all_but_axis(t: &Tensor, axis: usize, _hint: Option<usize>) -> Result<Tensor> {
    let mut current = t.clone();
    let mut current_axis = axis;
    while current.shape().rank() > 1 {
        let victim = if current_axis == 0 { 1 } else { 0 };
        current = current.reduce_axis(victim, ReduceKind::Sum)?;
        if victim < current_axis {
            current_axis -= 1;
        }
    }
    Ok(current)
}

/// Max-pool gradient routes to the window argmax; avg-pool distributes
/// equally.
fn pool2d_grad(out_grad: &Tensor, data: &Tensor, p: PoolParams) -> Result<Tensor> {
    let (b, c, _h, _w) = (
        data.shape().dim(0),
        data.shape().dim(1),
        data.shape().dim(2),
        data.shape().dim(3),
    );
    let (oh, ow) = (out_grad.shape().dim(2), out_grad.shape().dim(3));
    let mut grad = Tensor::zeros(data.shape().clone());
    for ib in 0..b {
        for ic in 0..c {
            for iy in 0..oh {
                for ix in 0..ow {
                    let g = out_grad.at(&[ib, ic, iy, ix]);
                    match p.kind {
                        PoolKind::Max => {
                            let (mut best, mut best_idx) = (f32::NEG_INFINITY, (0, 0));
                            for dy in 0..p.window {
                                for dx in 0..p.window {
                                    let v = data
                                        .at(&[ib, ic, iy * p.stride + dy, ix * p.stride + dx]);
                                    if v > best {
                                        best = v;
                                        best_idx = (iy * p.stride + dy, ix * p.stride + dx);
                                    }
                                }
                            }
                            let idx = [ib, ic, best_idx.0, best_idx.1];
                            let v = grad.at(&idx) + g;
                            grad.set(&idx, v);
                        }
                        PoolKind::Avg => {
                            let share = g / (p.window * p.window) as f32;
                            for dy in 0..p.window {
                                for dx in 0..p.window {
                                    let idx =
                                        [ib, ic, iy * p.stride + dy, ix * p.stride + dx];
                                    let v = grad.at(&idx) + share;
                                    grad.set(&idx, v);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(grad)
}

/// Batched lower-triangular Cholesky factorization.
fn batch_cholesky(t: &Tensor) -> Result<Tensor> {
    let (b, n) = (t.shape().dim(0), t.shape().dim(1));
    let mut out = Tensor::zeros(t.shape().clone());
    for ib in 0..b {
        for i in 0..n {
            for j in 0..=i {
                let mut sum = t.at(&[ib, i, j]);
                for k in 0..j {
                    sum -= out.at(&[ib, i, k]) * out.at(&[ib, j, k]);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(GraphError::Exec(format!(
                            "matrix {ib} is not positive definite (pivot {sum})"
                        )));
                    }
                    out.set(&[ib, i, j], sum.sqrt());
                } else {
                    out.set(&[ib, i, j], sum / out.at(&[ib, j, j]));
                }
            }
        }
    }
    Ok(out)
}

/// Batched Gauss-Jordan matrix inverse.
fn batch_inverse(t: &Tensor) -> Result<Tensor> {
    let (b, n) = (t.shape().dim(0), t.shape().dim(1));
    let mut out = Tensor::zeros(t.shape().clone());
    for ib in 0..b {
        // Augmented [A | I] elimination.
        let mut a = vec![vec![0.0f32; 2 * n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().take(n).enumerate() {
                *v = t.at(&[ib, i, j]);
            }
            row[n + i] = 1.0;
        }
        for col in 0..n {
            // Partial pivot.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1][col].abs().partial_cmp(&a[r2][col].abs()).unwrap())
                .unwrap();
            if a[pivot_row][col].abs() < 1e-12 {
                return Err(GraphError::Exec(format!("matrix {ib} is singular")));
            }
            a.swap(col, pivot_row);
            let pivot = a[col][col];
            for v in a[col].iter_mut() {
                *v /= pivot;
            }
            let col_vals = a[col].clone();
            for (row, r) in a.iter_mut().enumerate() {
                if row != col {
                    let factor = r[col];
                    if factor != 0.0 {
                        for (v, cv) in r.iter_mut().zip(&col_vals) {
                            *v -= factor * cv;
                        }
                    }
                }
            }
        }
        for (i, row) in a.iter().enumerate() {
            for j in 0..n {
                out.set(&[ib, i, j], row[n + j]);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn run_single(
        op: &str,
        shapes: &[Shape],
        values: Vec<Tensor>,
        attrs: Attrs,
    ) -> Result<Tensor> {
        let mut g = Graph::new();
        let ids: Vec<TensorId> = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| g.add_input(&format!("in{i}"), s.clone()))
            .collect();
        let out = g.add_op(op, "node", &ids, attrs)?;
        let mut exec = Executor::new();
        for (id, v) in ids.iter().zip(values) {
            exec.feed(*id, v);
        }
        Ok(exec.run(&g)?.remove(&out).expect("output evaluated"))
    }

    #[test]
    fn elementwise_dispatch() {
        let x = Tensor::from_vec(Shape::new(vec![3]), vec![-1., 0., 2.]).unwrap();
        let out = run_single("relu", &[x.shape().clone()], vec![x], Attrs::new()).unwrap();
        assert_eq!(out.data(), &[0., 0., 2.]);
    }

    #[test]
    fn scalar_dispatch_reads_attr() {
        let x = Tensor::arange(3);
        let out = run_single(
            "mul_scalar",
            &[x.shape().clone()],
            vec![x],
            Attrs::new().with_float("scalar", 3.0),
        )
        .unwrap();
        assert_eq!(out.data(), &[0., 3., 6.]);
    }

    #[test]
    fn unfed_input_errors() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![2]));
        let _ = g.add_op("relu", "r", &[x], Attrs::new()).unwrap();
        assert!(Executor::new().run(&g).is_err());
    }

    #[test]
    fn wrong_fed_shape_errors() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![2]));
        let mut e = Executor::new();
        e.feed(x, Tensor::zeros(Shape::new(vec![3])));
        assert!(e.run(&g).is_err());
    }

    #[test]
    fn reduce_to_axis_sums_other_dims() {
        let x = Tensor::from_vec(Shape::new(vec![2, 3]), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let out = run_single(
            "reduce_to_axis",
            &[x.shape().clone()],
            vec![x],
            Attrs::new().with_int("axis", 1),
        )
        .unwrap();
        assert_eq!(out.data(), &[5., 7., 9.]);
    }

    #[test]
    fn reduce_to_axis_rank4() {
        let x = Tensor::full(Shape::new(vec![2, 3, 4, 5]), 1.0);
        let out = run_single(
            "reduce_to_axis",
            &[x.shape().clone()],
            vec![x],
            Attrs::new().with_int("axis", 1),
        )
        .unwrap();
        assert_eq!(out.shape().dims(), &[3]);
        assert_eq!(out.data(), &[40.0, 40.0, 40.0]);
    }

    #[test]
    fn conv1d_bwd_matches_finite_difference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let dshape = Shape::new(vec![2, 2, 6]);
        let fshape = Shape::new(vec![2, 3, 2]);
        let mk = |shape: &Shape, rng: &mut StdRng| {
            Tensor::from_vec(
                shape.clone(),
                (0..shape.volume()).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            )
            .unwrap()
        };
        let data = mk(&dshape, &mut rng);
        let filt = mk(&fshape, &mut rng);
        let fwd = data.conv1d(&filt, Conv1dParams::default()).unwrap();
        let og = Tensor::full(fwd.shape().clone(), 1.0);

        let gd = run_single(
            "conv1d_bwd_data",
            &[og.shape().clone(), fshape.clone()],
            vec![og.clone(), filt.clone()],
            Attrs::new().with_int("in_x", 6),
        )
        .unwrap();
        let gf = run_single(
            "conv1d_bwd_filter",
            &[og.shape().clone(), dshape.clone()],
            vec![og, data.clone()],
            Attrs::new().with_int("dx", 2),
        )
        .unwrap();

        let eps = 1e-2f32;
        for probe in [0usize, 5, 11] {
            let mut dp = data.clone();
            dp.data_mut()[probe] += eps;
            let mut dm = data.clone();
            dm.data_mut()[probe] -= eps;
            let fd = (dp.conv1d(&filt, Conv1dParams::default()).unwrap().sum_all()
                - dm.conv1d(&filt, Conv1dParams::default()).unwrap().sum_all())
                / (2.0 * eps);
            assert!((fd - gd.data()[probe]).abs() < 1e-2);

            let mut fp = filt.clone();
            fp.data_mut()[probe] += eps;
            let mut fm = filt.clone();
            fm.data_mut()[probe] -= eps;
            let fd = (data.conv1d(&fp, Conv1dParams::default()).unwrap().sum_all()
                - data.conv1d(&fm, Conv1dParams::default()).unwrap().sum_all())
                / (2.0 * eps);
            assert!((fd - gf.data()[probe]).abs() < 1e-2);
        }
    }

    #[test]
    fn pool_max_grad_routes_to_argmax() {
        let data =
            Tensor::from_vec(Shape::new(vec![1, 1, 2, 2]), vec![1., 5., 3., 2.]).unwrap();
        let og = Tensor::from_vec(Shape::new(vec![1, 1, 1, 1]), vec![10.0]).unwrap();
        let g = pool2d_grad(&og, &data, PoolParams { kind: PoolKind::Max, window: 2, stride: 2 })
            .unwrap();
        assert_eq!(g.data(), &[0., 10., 0., 0.]);
    }

    #[test]
    fn pool_avg_grad_distributes() {
        let data = Tensor::full(Shape::new(vec![1, 1, 2, 2]), 1.0);
        let og = Tensor::from_vec(Shape::new(vec![1, 1, 1, 1]), vec![8.0]).unwrap();
        let g = pool2d_grad(&og, &data, PoolParams { kind: PoolKind::Avg, window: 2, stride: 2 })
            .unwrap();
        assert_eq!(g.data(), &[2.0; 4]);
    }

    #[test]
    fn cholesky_reconstructs_input() {
        // A = L·Lᵀ for a positive-definite A.
        let a = Tensor::from_vec(
            Shape::new(vec![1, 2, 2]),
            vec![4., 2., 2., 3.],
        )
        .unwrap();
        let l = batch_cholesky(&a).unwrap();
        // Reconstruct.
        let l0 = l.slice(0, 0, 1).unwrap().reshape(Shape::new(vec![2, 2])).unwrap();
        let rec = l0.matmul_nt(&l0).unwrap();
        assert!(rec.allclose(&a.reshape(Shape::new(vec![2, 2])).unwrap(), 1e-5));
    }

    #[test]
    fn cholesky_rejects_non_positive_definite() {
        let a = Tensor::from_vec(Shape::new(vec![1, 2, 2]), vec![0., 0., 0., 0.]).unwrap();
        assert!(batch_cholesky(&a).is_err());
    }

    #[test]
    fn inverse_times_input_is_identity() {
        let a = Tensor::from_vec(
            Shape::new(vec![1, 2, 2]),
            vec![4., 7., 2., 6.],
        )
        .unwrap();
        let inv = batch_inverse(&a).unwrap();
        let a0 = a.reshape(Shape::new(vec![2, 2])).unwrap();
        let i0 = inv.reshape(Shape::new(vec![2, 2])).unwrap();
        let prod = a0.matmul(&i0).unwrap();
        let eye = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1., 0., 0., 1.]).unwrap();
        assert!(prod.allclose(&eye, 1e-4));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Tensor::from_vec(Shape::new(vec![1, 2, 2]), vec![1., 2., 2., 4.]).unwrap();
        assert!(batch_inverse(&a).is_err());
    }

    #[test]
    fn data_movement_ops_roundtrip() {
        let x = Tensor::arange(6).reshape(Shape::new(vec![2, 3])).unwrap();
        let sliced = run_single(
            "slice_axis",
            &[x.shape().clone()],
            vec![x.clone()],
            Attrs::new().with_int("axis", 1).with_int("begin", 1).with_int("end", 3),
        )
        .unwrap();
        assert_eq!(sliced.data(), &[1., 2., 4., 5.]);

        let flipped = run_single(
            "flip",
            &[x.shape().clone()],
            vec![x.clone()],
            Attrs::new().with_int("axis", 0),
        )
        .unwrap();
        assert_eq!(flipped.data(), &[3., 4., 5., 0., 1., 2.]);

        let padded = run_single(
            "pad",
            &[x.shape().clone()],
            vec![x.clone()],
            Attrs::new().with_int("axis", 0).with_int("before", 1),
        )
        .unwrap();
        assert_eq!(padded.shape().dims(), &[3, 3]);
        assert_eq!(&padded.data()[..3], &[0., 0., 0.]);

        let repeated = run_single(
            "repeat",
            &[Shape::new(vec![2])],
            vec![Tensor::arange(2)],
            Attrs::new().with_int("repeats", 2),
        )
        .unwrap();
        assert_eq!(repeated.data(), &[0., 0., 1., 1.]);

        let tiled = run_single(
            "tile",
            &[Shape::new(vec![2])],
            vec![Tensor::arange(2)],
            Attrs::new().with_int("repeats", 2),
        )
        .unwrap();
        assert_eq!(tiled.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn unknown_kernel_is_reported() {
        // `sparse_dot` is registered but shape inference rejects it; call
        // dispatch directly to exercise the kernel-missing path.
        let x = Tensor::arange(2);
        let err = dispatch("sparse_dot", &[&x], &Attrs::new(), x.shape()).unwrap_err();
        assert!(err.to_string().contains("no CPU kernel"));
    }

    #[test]
    fn end_to_end_training_step_runs() {
        use crate::autodiff;
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![4, 8]));
        let w = g.add_weight("w", Shape::new(vec![8, 3]));
        let labels = g.add_input("labels", Shape::new(vec![4]));
        let h = g.add_op("matmul", "fc", &[x, w], Attrs::new()).unwrap();
        let a = g.add_op("tanh", "act", &[h], Attrs::new()).unwrap();
        let w2 = g.add_weight("w2", Shape::new(vec![3, 3]));
        let logits = g.add_op("matmul", "fc2", &[a, w2], Attrs::new()).unwrap();
        let loss = g.add_op("softmax_ce", "loss", &[logits, labels], Attrs::new()).unwrap();
        let info = autodiff::backward(&mut g, loss, &[w, w2]).unwrap();

        let mut exec = Executor::new();
        exec.feed(x, Tensor::random(Shape::new(vec![4, 8]), 1, 1.0));
        exec.feed(w, Tensor::random(Shape::new(vec![8, 3]), 2, 0.5));
        exec.feed(w2, Tensor::random(Shape::new(vec![3, 3]), 3, 0.5));
        exec.feed(labels, Tensor::from_vec(Shape::new(vec![4]), vec![0., 1., 2., 0.]).unwrap());
        let values = exec.run(&g).unwrap();
        let loss_v = values[&loss].data()[0];
        assert!(loss_v.is_finite() && loss_v > 0.0);
        let gw = info.grad(w).unwrap();
        assert!(values[&gw].data().iter().any(|&v| v != 0.0));
    }
}
