//! End-to-end transparency tests (§2): for every model family, a Tofu
//! partition plan's 8-worker execution computes *exactly* what the original
//! single-device graph computes — losses and every weight gradient.

use std::collections::BTreeMap;

use tofu::core::{generate, partition, GenOptions, PartitionOptions};
use tofu::graph::{Executor, Graph, TensorId, TensorKind};
use tofu::models::{mlp, rnn, small_cnn, BuiltModel, MlpConfig, RnnConfig, SmallCnnConfig};
use tofu::tensor::Tensor;

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name.contains("labels") {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 11, 0.4)
        };
        out.push((t, v));
    }
    out
}

/// Partitions, generates, executes both versions and compares loss + grads.
fn validate(model: &BuiltModel, workers: usize, tol: f32) {
    let g = &model.graph;
    let plan = partition(g, &PartitionOptions { workers, ..Default::default() })
        .expect("partition succeeds");
    let sharded = generate(g, &plan, &GenOptions::default()).expect("generation succeeds");
    assert!(sharded.exact, "expected an exactly executable plan");

    let mut base = Executor::new();
    let mut part = Executor::new();
    for (t, v) in feeds(g) {
        base.feed(t, v.clone());
        for (shard, piece) in sharded.scatter(t, &v).expect("scatter") {
            part.feed(shard, piece);
        }
    }
    let base_vals = base.run(g).expect("single-device run");
    let part_vals: BTreeMap<_, _> = part.run(&sharded.graph).expect("partitioned run");

    let mut to_check: Vec<TensorId> = vec![model.loss];
    to_check.extend(model.grads.iter().map(|&(_, gw)| gw));
    for t in to_check {
        let expect = &base_vals[&t];
        let got = sharded.gather(t, expect.shape(), &part_vals).expect("gather");
        assert!(
            got.allclose(expect, tol),
            "tensor {} diverged between 1 and {workers} workers",
            g.tensor(t).name
        );
    }
}

#[test]
fn mlp_two_four_eight_workers() {
    let model = mlp(&MlpConfig {
        batch: 16,
        dims: vec![32, 64, 32],
        classes: 8,
        with_updates: false,
    })
    .unwrap();
    for workers in [2, 4, 8] {
        validate(&model, workers, 1e-3);
    }
}

#[test]
fn mlp_with_sgd_updates() {
    let model = mlp(&MlpConfig {
        batch: 16,
        dims: vec![32, 32],
        classes: 8,
        with_updates: true,
    })
    .unwrap();
    validate(&model, 4, 1e-3);
}

#[test]
fn cnn_with_padded_convolutions() {
    // Convolution with pad 1 exercises the zero-materializing MultiFetch and
    // (when a spatial split is chosen) halo exchange.
    let model = small_cnn(&SmallCnnConfig {
        batch: 8,
        channels: 4,
        image: 8,
        conv_channels: 8,
        conv_layers: 2,
        classes: 4,
    })
    .unwrap();
    for workers in [2, 4] {
        validate(&model, workers, 1e-3);
    }
}

#[test]
fn unrolled_rnn_with_timestep_coalescing() {
    let model = rnn(&RnnConfig {
        layers: 2,
        hidden: 16,
        batch: 8,
        steps: 3,
        embed: 8,
        vocab: 8,
        with_updates: false,
    })
    .unwrap();
    for workers in [2, 4] {
        validate(&model, workers, 1e-3);
    }
}

#[test]
fn non_power_of_two_workers() {
    let model = mlp(&MlpConfig {
        batch: 12,
        dims: vec![24, 36],
        classes: 6,
        with_updates: false,
    })
    .unwrap();
    validate(&model, 6, 1e-3);
    validate(&model, 3, 1e-3);
}

/// Scatter → threaded runtime → gather must reproduce the unpartitioned
/// `Executor::run`, exercising the real channel interconnect rather than a
/// second single-threaded executor.
fn validate_runtime(model: &BuiltModel, workers: usize, tol: f32) {
    let g = &model.graph;
    let plan = partition(g, &PartitionOptions { workers, ..Default::default() })
        .expect("partition succeeds");
    let sharded = generate(g, &plan, &GenOptions::default()).expect("generation succeeds");
    assert!(sharded.exact, "expected an exactly executable plan");

    let mut base = Executor::new();
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(g) {
        base.feed(t, v.clone());
        shard_feeds.extend(sharded.scatter(t, &v).expect("scatter"));
    }
    let base_vals = base.run(g).expect("single-device run");
    let out = tofu::runtime::run(&sharded, &shard_feeds).expect("runtime run");
    assert_eq!(out.trace.workers.len(), workers);

    let mut to_check: Vec<TensorId> = vec![model.loss];
    to_check.extend(model.grads.iter().map(|&(_, gw)| gw));
    for t in to_check {
        let expect = &base_vals[&t];
        let got = sharded.gather(t, expect.shape(), &out.values).expect("gather");
        assert!(
            got.allclose(expect, tol),
            "tensor {} diverged between the executor and the {workers}-worker runtime",
            g.tensor(t).name
        );
    }
}

#[test]
fn runtime_matches_executor_on_mlp() {
    let model = mlp(&MlpConfig {
        batch: 16,
        dims: vec![32, 64, 32],
        classes: 8,
        with_updates: true,
    })
    .unwrap();
    for workers in [2, 4, 8] {
        validate_runtime(&model, workers, 1e-3);
    }
}

#[test]
fn runtime_matches_executor_on_cnn() {
    let model = small_cnn(&SmallCnnConfig {
        batch: 8,
        channels: 4,
        image: 8,
        conv_channels: 8,
        conv_layers: 2,
        classes: 4,
    })
    .unwrap();
    for workers in [2, 4] {
        validate_runtime(&model, workers, 1e-3);
    }
}

mod runtime_roundtrip_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// For arbitrary (power-of-two) MLP shapes, the 1- and 4-worker
        /// runtimes both reproduce the unpartitioned executor.
        #[test]
        fn runtime_roundtrip_over_shapes(
            batch_pow in 2u32..5,
            hidden_pow in 3u32..6,
            classes in prop::sample::select(vec![4usize, 8]),
        ) {
            let batch = 1usize << batch_pow;
            let hidden = 1usize << hidden_pow;
            prop_assume!(batch >= 4);
            let model = mlp(&MlpConfig {
                batch,
                dims: vec![hidden, hidden],
                classes,
                with_updates: false,
            })
            .unwrap();
            for workers in [1usize, 4] {
                validate_runtime(&model, workers, 1e-4);
            }
        }
    }
}

#[test]
fn baseline_partitioners_are_also_transparent() {
    use tofu::core::baselines::{run, Algorithm};
    let model = mlp(&MlpConfig {
        batch: 16,
        dims: vec![32, 32],
        classes: 8,
        with_updates: false,
    })
    .unwrap();
    let g = &model.graph;
    for alg in Algorithm::all() {
        let plan = run(g, alg, 4).unwrap_or_else(|e| panic!("{}: {e}", alg.label()));
        let sharded = generate(g, &plan, &GenOptions::default()).expect("generation");
        let mut base = Executor::new();
        let mut part = Executor::new();
        for (t, v) in feeds(g) {
            base.feed(t, v.clone());
            for (shard, piece) in sharded.scatter(t, &v).unwrap() {
                part.feed(shard, piece);
            }
        }
        let base_vals = base.run(g).unwrap();
        let part_vals: BTreeMap<_, _> = part.run(&sharded.graph).unwrap();
        let expect = &base_vals[&model.loss];
        let got = sharded.gather(model.loss, expect.shape(), &part_vals).unwrap();
        assert!(got.allclose(expect, 1e-3), "{} loss diverged", alg.label());
    }
}
