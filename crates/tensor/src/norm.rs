//! Axis-aware normalization kernels: softmax along an arbitrary axis, its
//! gradient, and layer normalization with its backward pieces.
//!
//! Every kernel walks "rows" along the normalized axis with an explicit
//! (outer, inner) stride decomposition, so the contiguous last-axis case —
//! the only one the old rank-2 [`Tensor::softmax`] supported — performs the
//! exact same operations in the exact same order and stays bit-identical.

use crate::{Result, Shape, Tensor, TensorError};

/// (outer, extent, inner) decomposition of `shape` around `axis`.
fn row_geometry(shape: &Shape, axis: usize) -> Result<(usize, usize, usize)> {
    let extent = shape.try_dim(axis)?;
    let outer: usize = shape.dims()[..axis].iter().product();
    let inner: usize = shape.dims()[axis + 1..].iter().product();
    Ok((outer, extent, inner))
}

/// Calls `f` with the flat base offset and stride of every row along `axis`.
fn for_each_row(outer: usize, extent: usize, inner: usize, mut f: impl FnMut(usize, usize)) {
    for o in 0..outer {
        for i in 0..inner {
            f(o * extent * inner + i, inner);
        }
    }
}

impl Tensor {
    /// Softmax along `axis` of a tensor of any rank.
    ///
    /// For rank-2 input and `axis == 1` this is bit-identical to
    /// [`Tensor::softmax`].
    pub fn softmax_axis(&self, axis: usize) -> Result<Tensor> {
        let (outer, extent, inner) = row_geometry(self.shape(), axis)?;
        let mut out = self.clone();
        let data = out.data_mut();
        for_each_row(outer, extent, inner, |base, stride| {
            let mut mx = f32::NEG_INFINITY;
            for e in 0..extent {
                mx = mx.max(data[base + e * stride]);
            }
            let mut denom = 0.0;
            for e in 0..extent {
                let v = &mut data[base + e * stride];
                *v = (*v - mx).exp();
                denom += *v;
            }
            for e in 0..extent {
                data[base + e * stride] /= denom;
            }
        });
        Ok(out)
    }

    /// Gradient of softmax along `axis`: given upstream gradient `self = dy`
    /// and the forward output `y`, returns `y ⊙ (dy − Σ_axis dy·y)`.
    pub fn softmax_grad_axis(&self, y: &Tensor, axis: usize) -> Result<Tensor> {
        if self.shape() != y.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().dims().to_vec(),
                rhs: y.shape().dims().to_vec(),
            });
        }
        let (outer, extent, inner) = row_geometry(self.shape(), axis)?;
        let mut out = self.clone();
        let dy = self.data();
        let yd = y.data();
        let data = out.data_mut();
        for_each_row(outer, extent, inner, |base, stride| {
            let mut dot = 0.0;
            for e in 0..extent {
                dot += dy[base + e * stride] * yd[base + e * stride];
            }
            for e in 0..extent {
                let idx = base + e * stride;
                data[idx] = yd[idx] * (dy[idx] - dot);
            }
        });
        Ok(out)
    }

    /// Layer normalization along `axis` with per-element scale and shift:
    /// `out = (x − μ)/√(σ² + eps) · gamma + beta`, statistics per row.
    pub fn layer_norm_axis(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        axis: usize,
        eps: f32,
    ) -> Result<Tensor> {
        let (outer, extent, inner) = row_geometry(self.shape(), axis)?;
        check_param(gamma, extent, "gamma")?;
        check_param(beta, extent, "beta")?;
        let mut out = self.clone();
        let x = self.data();
        let g = gamma.data();
        let bt = beta.data();
        let data = out.data_mut();
        for_each_row(outer, extent, inner, |base, stride| {
            let inv = row_inv_std(x, base, stride, extent, eps);
            let mean = row_mean(x, base, stride, extent);
            for e in 0..extent {
                let idx = base + e * stride;
                data[idx] = (x[idx] - mean) * inv * g[e] + bt[e];
            }
        });
        Ok(out)
    }

    /// The normalized activations `x̂ = (x − μ)/√(σ² + eps)` of layer norm —
    /// the piece its gamma-gradient contracts against.
    pub fn layer_norm_xhat_axis(&self, axis: usize, eps: f32) -> Result<Tensor> {
        let (outer, extent, inner) = row_geometry(self.shape(), axis)?;
        let mut out = self.clone();
        let x = self.data();
        let data = out.data_mut();
        for_each_row(outer, extent, inner, |base, stride| {
            let inv = row_inv_std(x, base, stride, extent, eps);
            let mean = row_mean(x, base, stride, extent);
            for e in 0..extent {
                let idx = base + e * stride;
                data[idx] = (x[idx] - mean) * inv;
            }
        });
        Ok(out)
    }

    /// Input gradient of layer norm: `self = dy`, with the forward input `x`
    /// and scale `gamma`; per row with `g = dy·gamma`:
    /// `dx = (g − mean(g) − x̂·mean(g·x̂)) / √(σ² + eps)`.
    pub fn layer_norm_x_grad_axis(
        &self,
        x: &Tensor,
        gamma: &Tensor,
        axis: usize,
        eps: f32,
    ) -> Result<Tensor> {
        if self.shape() != x.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().dims().to_vec(),
                rhs: x.shape().dims().to_vec(),
            });
        }
        let (outer, extent, inner) = row_geometry(self.shape(), axis)?;
        check_param(gamma, extent, "gamma")?;
        let mut out = self.clone();
        let dy = self.data();
        let xd = x.data();
        let g = gamma.data();
        let data = out.data_mut();
        for_each_row(outer, extent, inner, |base, stride| {
            let inv = row_inv_std(xd, base, stride, extent, eps);
            let mean = row_mean(xd, base, stride, extent);
            let m = extent as f32;
            let mut sum_dg = 0.0;
            let mut sum_dg_xhat = 0.0;
            for (e, &ge) in g.iter().enumerate().take(extent) {
                let idx = base + e * stride;
                let dg = dy[idx] * ge;
                sum_dg += dg;
                sum_dg_xhat += dg * (xd[idx] - mean) * inv;
            }
            let (m1, m2) = (sum_dg / m, sum_dg_xhat / m);
            for (e, &ge) in g.iter().enumerate().take(extent) {
                let idx = base + e * stride;
                let dg = dy[idx] * ge;
                let xhat = (xd[idx] - mean) * inv;
                data[idx] = (dg - m1 - xhat * m2) * inv;
            }
        });
        Ok(out)
    }
}

fn check_param(p: &Tensor, extent: usize, name: &str) -> Result<()> {
    if p.shape().rank() != 1 || p.shape().dim(0) != extent {
        return Err(TensorError::Incompatible(format!(
            "{name} must be rank-1 of extent {extent}, got {}",
            p.shape()
        )));
    }
    Ok(())
}

fn row_mean(x: &[f32], base: usize, stride: usize, extent: usize) -> f32 {
    let mut sum = 0.0;
    for e in 0..extent {
        sum += x[base + e * stride];
    }
    sum / extent as f32
}

fn row_inv_std(x: &[f32], base: usize, stride: usize, extent: usize, eps: f32) -> f32 {
    let mean = row_mean(x, base, stride, extent);
    let mut var = 0.0;
    for e in 0..extent {
        let d = x[base + e * stride] - mean;
        var += d * d;
    }
    1.0 / (var / extent as f32 + eps).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_axis_last_is_bit_identical_to_rank2_softmax() {
        let t = Tensor::from_vec(
            Shape::new(vec![3, 4]),
            (0..12).map(|x| (x as f32 * 0.7).sin() * 3.0).collect(),
        )
        .unwrap();
        assert_eq!(t.softmax_axis(1).unwrap(), t.softmax().unwrap());
    }

    #[test]
    fn softmax_axis_rank3_matches_per_slice_softmax() {
        let t = Tensor::from_vec(
            Shape::new(vec![2, 3, 4]),
            (0..24).map(|x| (x as f32 * 0.3).cos() * 2.0).collect(),
        )
        .unwrap();
        let s = t.softmax_axis(2).unwrap();
        for b in 0..2 {
            let slab = t.slice(0, b, b + 1).unwrap().reshape(Shape::new(vec![3, 4])).unwrap();
            let expect = slab.softmax().unwrap();
            let got = s.slice(0, b, b + 1).unwrap().reshape(Shape::new(vec![3, 4])).unwrap();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn softmax_axis_interior_normalizes_that_axis() {
        let t = Tensor::from_vec(
            Shape::new(vec![2, 3, 2]),
            (0..12).map(|x| x as f32).collect(),
        )
        .unwrap();
        let s = t.softmax_axis(1).unwrap();
        // Sum over axis 1 is 1 for every (b, j).
        for b in 0..2 {
            for j in 0..2 {
                let sum: f32 = (0..3).map(|i| s.at(&[b, i, j])).sum();
                assert!((sum - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn softmax_grad_matches_finite_difference() {
        let x = Tensor::from_vec(
            Shape::new(vec![2, 3]),
            vec![0.3, -1.2, 0.8, 2.0, 0.1, -0.4],
        )
        .unwrap();
        let dy = Tensor::from_vec(
            Shape::new(vec![2, 3]),
            vec![1.0, -0.5, 0.25, 0.7, 0.2, -1.1],
        )
        .unwrap();
        let y = x.softmax_axis(1).unwrap();
        let dx = dy.softmax_grad_axis(&y, 1).unwrap();
        let eps = 1e-3f32;
        for probe in 0..6 {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let f = |t: &Tensor| -> f32 {
                t.softmax_axis(1)
                    .unwrap()
                    .data()
                    .iter()
                    .zip(dy.data())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let fd = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((fd - dx.data()[probe]).abs() < 1e-3, "probe {probe}: {fd} vs {}", dx.data()[probe]);
        }
    }

    #[test]
    fn layer_norm_rows_are_standardized() {
        let x = Tensor::from_vec(
            Shape::new(vec![2, 4]),
            vec![1., 2., 3., 4., -2., 0., 2., 8.],
        )
        .unwrap();
        let gamma = Tensor::full(Shape::new(vec![4]), 1.0);
        let beta = Tensor::zeros(Shape::new(vec![4]));
        let y = x.layer_norm_axis(&gamma, &beta, 1, 1e-5).unwrap();
        for row in 0..2 {
            let r = &y.data()[row * 4..(row + 1) * 4];
            let mean: f32 = r.iter().sum::<f32>() / 4.0;
            let var: f32 = r.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
        // xhat is the gamma=1, beta=0 case.
        assert_eq!(x.layer_norm_xhat_axis(1, 1e-5).unwrap(), y);
    }

    #[test]
    fn layer_norm_x_grad_matches_finite_difference() {
        let x = Tensor::from_vec(
            Shape::new(vec![2, 3]),
            vec![0.5, -0.2, 1.3, 2.0, -1.0, 0.3],
        )
        .unwrap();
        let gamma = Tensor::from_vec(Shape::new(vec![3]), vec![1.2, 0.8, -0.5]).unwrap();
        let beta = Tensor::from_vec(Shape::new(vec![3]), vec![0.1, -0.3, 0.2]).unwrap();
        let dy = Tensor::from_vec(
            Shape::new(vec![2, 3]),
            vec![1.0, -0.4, 0.6, -0.2, 0.9, 0.5],
        )
        .unwrap();
        let dx = dy.layer_norm_x_grad_axis(&x, &gamma, 1, 1e-5).unwrap();
        let eps = 1e-3f32;
        for probe in 0..6 {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let f = |t: &Tensor| -> f32 {
                t.layer_norm_axis(&gamma, &beta, 1, 1e-5)
                    .unwrap()
                    .data()
                    .iter()
                    .zip(dy.data())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let fd = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((fd - dx.data()[probe]).abs() < 2e-3, "probe {probe}: {fd} vs {}", dx.data()[probe]);
        }
    }

    #[test]
    fn norm_kernels_validate_shapes() {
        let x = Tensor::zeros(Shape::new(vec![2, 3]));
        let bad = Tensor::zeros(Shape::new(vec![4]));
        let ok = Tensor::zeros(Shape::new(vec![3]));
        assert!(x.layer_norm_axis(&bad, &ok, 1, 1e-5).is_err());
        assert!(x.softmax_axis(2).is_err());
        let y = Tensor::zeros(Shape::new(vec![3, 2]));
        assert!(x.softmax_grad_axis(&y, 1).is_err());
        assert!(x.layer_norm_x_grad_axis(&y, &ok, 1, 1e-5).is_err());
    }
}
