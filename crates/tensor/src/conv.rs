//! Convolution and pooling kernels (forward and backward).
//!
//! Layouts follow the paper's examples: `data` is `(batch, channel, [height,]
//! width)` and `filters` is `(c_in, c_out, [kh,] kw)` — matching the conv1d
//! TDL description in Fig. 3 of the paper.

use crate::{Result, Shape, Tensor, TensorError};

/// Hyper-parameters of a 1-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv1dParams {
    /// Spatial stride.
    pub stride: usize,
    /// Symmetric zero padding on the spatial axis.
    pub pad: usize,
}

impl Default for Conv1dParams {
    fn default() -> Self {
        Conv1dParams { stride: 1, pad: 0 }
    }
}

/// Hyper-parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Spatial stride (both axes).
    pub stride: usize,
    /// Symmetric zero padding (both axes).
    pub pad: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams { stride: 1, pad: 0 }
    }
}

/// Pooling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Hyper-parameters of a 2-D pooling operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolParams {
    /// Pooling mode.
    pub kind: PoolKind,
    /// Square window size.
    pub window: usize,
    /// Spatial stride (both axes).
    pub stride: usize,
}

/// Computes the output spatial extent of a convolution/pooling axis.
pub(crate) fn conv_out_extent(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    if padded < kernel {
        return 0;
    }
    (padded - kernel) / stride + 1
}

impl Tensor {
    /// 1-D convolution: `data (b, ci, x)` with `filters (ci, co, dx)`.
    pub fn conv1d(&self, filters: &Tensor, p: Conv1dParams) -> Result<Tensor> {
        if self.shape().rank() != 3 || filters.shape().rank() != 3 {
            return Err(TensorError::Incompatible("conv1d expects rank-3 operands".into()));
        }
        let (b, ci, x) = (self.shape().dim(0), self.shape().dim(1), self.shape().dim(2));
        let (fci, co, dx) = (filters.shape().dim(0), filters.shape().dim(1), filters.shape().dim(2));
        if ci != fci {
            return Err(TensorError::Incompatible(format!("conv1d channels {ci} vs {fci}")));
        }
        let ox = conv_out_extent(x, dx, p.stride, p.pad);
        let mut out = Tensor::zeros(Shape::new(vec![b, co, ox]));
        let dd = self.data();
        let fd = filters.data();
        let od = out.data_mut();
        // The padded-boundary test is hoisted out of the inner loop by
        // clipping the tap range per output position; the remaining inner
        // loop is a dot product of two contiguous slices. The surviving
        // terms and their order (ici outer, idx ascending) are exactly the
        // scalar loop's, so outputs stay bit-identical.
        for ib in 0..b {
            for ico in 0..co {
                for iox in 0..ox {
                    let base = iox * p.stride;
                    let lo = p.pad.saturating_sub(base);
                    let hi = dx.min((x + p.pad).saturating_sub(base));
                    let mut acc = 0.0;
                    if lo < hi {
                        let s0 = base + lo - p.pad;
                        let taps = hi - lo;
                        for ici in 0..ci {
                            let drow = &dd[(ib * ci + ici) * x + s0..][..taps];
                            let frow = &fd[(ici * co + ico) * dx + lo..][..taps];
                            for (dv, fv) in drow.iter().zip(frow) {
                                acc += dv * fv;
                            }
                        }
                    }
                    od[(ib * co + ico) * ox + iox] = acc;
                }
            }
        }
        Ok(out)
    }

    /// 2-D convolution: `data (b, ci, h, w)` with `filters (ci, co, kh, kw)`.
    pub fn conv2d(&self, filters: &Tensor, p: Conv2dParams) -> Result<Tensor> {
        if self.shape().rank() != 4 || filters.shape().rank() != 4 {
            return Err(TensorError::Incompatible("conv2d expects rank-4 operands".into()));
        }
        let (b, ci, h, w) =
            (self.shape().dim(0), self.shape().dim(1), self.shape().dim(2), self.shape().dim(3));
        let (fci, co, kh, kw) = (
            filters.shape().dim(0),
            filters.shape().dim(1),
            filters.shape().dim(2),
            filters.shape().dim(3),
        );
        if ci != fci {
            return Err(TensorError::Incompatible(format!("conv2d channels {ci} vs {fci}")));
        }
        let oh = conv_out_extent(h, kh, p.stride, p.pad);
        let ow = conv_out_extent(w, kw, p.stride, p.pad);
        let mut out = Tensor::zeros(Shape::new(vec![b, co, oh, ow]));
        let dd = self.data();
        let fd = filters.data();
        let od = out.data_mut();
        if p.stride == 1 && p.pad == 0 && kh == 1 && kw == 1 {
            // Pointwise convolution is a per-pixel channel matmul. Packing
            // the filter (ci, co) and each data block (ci, s) transposed —
            // O(ci·co + b·ci·s) against O(b·ci·co·s) compute — turns every
            // output element into a dot of two contiguous rows over `ci`,
            // which the autovectorizer widens; the general loop below walks
            // `taps`-long runs (here: 1) instead. Accumulation over `ici`
            // stays ascending, so outputs are bit-identical.
            let s = h * w;
            let mut ft = vec![0.0f32; ci * co];
            for ici in 0..ci {
                for ico in 0..co {
                    ft[ico * ci + ici] = fd[ici * co + ico];
                }
            }
            let mut dt = vec![0.0f32; s * ci];
            for ib in 0..b {
                let dblock = &dd[ib * ci * s..(ib + 1) * ci * s];
                for ici in 0..ci {
                    for (is, &v) in dblock[ici * s..(ici + 1) * s].iter().enumerate() {
                        dt[is * ci + ici] = v;
                    }
                }
                let oblock = &mut od[ib * co * s..(ib + 1) * co * s];
                for ico in 0..co {
                    let frow = &ft[ico * ci..(ico + 1) * ci];
                    let orow = &mut oblock[ico * s..(ico + 1) * s];
                    for (is, o) in orow.iter_mut().enumerate() {
                        let drow = &dt[is * ci..(is + 1) * ci];
                        let mut acc = 0.0;
                        for (dv, fv) in drow.iter().zip(frow) {
                            acc += dv * fv;
                        }
                        *o = acc;
                    }
                }
            }
            return Ok(out);
        }
        // Same restructuring as conv1d: both spatial boundary tests are
        // hoisted into clipped tap ranges, leaving a contiguous slice dot
        // over ikw. Term order (ici, ikh, ikw ascending) matches the scalar
        // loop's, so outputs stay bit-identical.
        for ib in 0..b {
            for ico in 0..co {
                for ioh in 0..oh {
                    let hbase = ioh * p.stride;
                    let kh_lo = p.pad.saturating_sub(hbase);
                    let kh_hi = kh.min((h + p.pad).saturating_sub(hbase));
                    for iow in 0..ow {
                        let wbase = iow * p.stride;
                        let kw_lo = p.pad.saturating_sub(wbase);
                        let kw_hi = kw.min((w + p.pad).saturating_sub(wbase));
                        let mut acc = 0.0;
                        if kh_lo < kh_hi && kw_lo < kw_hi {
                            let sw0 = wbase + kw_lo - p.pad;
                            let taps = kw_hi - kw_lo;
                            for ici in 0..ci {
                                for ikh in kh_lo..kh_hi {
                                    let sh = hbase + ikh - p.pad;
                                    let drow = &dd[((ib * ci + ici) * h + sh) * w + sw0..][..taps];
                                    let frow =
                                        &fd[((ici * co + ico) * kh + ikh) * kw + kw_lo..][..taps];
                                    for (dv, fv) in drow.iter().zip(frow) {
                                        acc += dv * fv;
                                    }
                                }
                            }
                        }
                        od[((ib * co + ico) * oh + ioh) * ow + iow] = acc;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Gradient of [`Tensor::conv2d`] with respect to the data input.
    pub fn conv2d_backward_data(
        out_grad: &Tensor,
        filters: &Tensor,
        data_shape: &Shape,
        p: Conv2dParams,
    ) -> Result<Tensor> {
        let (b, co, oh, ow) = (
            out_grad.shape().dim(0),
            out_grad.shape().dim(1),
            out_grad.shape().dim(2),
            out_grad.shape().dim(3),
        );
        let (ci, fco, kh, kw) = (
            filters.shape().dim(0),
            filters.shape().dim(1),
            filters.shape().dim(2),
            filters.shape().dim(3),
        );
        if co != fco {
            return Err(TensorError::Incompatible(format!("channels {co} vs {fco}")));
        }
        let (dci, h, w) = (data_shape.dim(1), data_shape.dim(2), data_shape.dim(3));
        let mut grad = Tensor::zeros(data_shape.clone());
        let ogd = out_grad.data();
        let fd = filters.data();
        let gd = grad.data_mut();
        if p.stride == 1 && p.pad == 0 && kh == 1 && kw == 1 {
            // Pointwise fast path, mirroring `conv2d`'s: pack the output
            // gradient block transposed to (s, co) so each data-gradient
            // element is a dot over `co` of two contiguous rows (the filter
            // row (ci, co) is already contiguous over `ico`). Each gradient
            // element collects its terms over `ico` ascending with the same
            // `g == 0.0` skip, so results are bit-identical to the general
            // loop below.
            let s = oh * ow;
            let mut gt = vec![0.0f32; s * co];
            for ib in 0..b {
                let oblock = &ogd[ib * co * s..(ib + 1) * co * s];
                for ico in 0..co {
                    for (is, &v) in oblock[ico * s..(ico + 1) * s].iter().enumerate() {
                        gt[is * co + ico] = v;
                    }
                }
                let gblock = &mut gd[ib * dci * s..(ib + 1) * dci * s];
                for ici in 0..ci {
                    let frow = &fd[ici * co..(ici + 1) * co];
                    let grow_out = &mut gblock[ici * s..(ici + 1) * s];
                    for (is, o) in grow_out.iter_mut().enumerate() {
                        let grow = &gt[is * co..(is + 1) * co];
                        let mut acc = 0.0;
                        for (gv, fv) in grow.iter().zip(frow) {
                            if *gv != 0.0 {
                                acc += gv * fv;
                            }
                        }
                        *o = acc;
                    }
                }
            }
            return Ok(grad);
        }
        // Same restructuring as the forward kernels: boundary tests hoisted
        // into clipped tap ranges, per-element `at`/`set` index arithmetic
        // replaced by contiguous row slices. Loop order — and therefore the
        // order of additions into each gradient element — is unchanged, so
        // gradients stay bit-identical. The data-dependent `g == 0.0` skip
        // is preserved (zero-heavy gradients genuinely do less work here).
        for ib in 0..b {
            for ico in 0..co {
                for ioh in 0..oh {
                    let hbase = ioh * p.stride;
                    let kh_lo = p.pad.saturating_sub(hbase);
                    let kh_hi = kh.min((h + p.pad).saturating_sub(hbase));
                    for iow in 0..ow {
                        let g = ogd[((ib * co + ico) * oh + ioh) * ow + iow];
                        if g == 0.0 {
                            continue;
                        }
                        let wbase = iow * p.stride;
                        let kw_lo = p.pad.saturating_sub(wbase);
                        let kw_hi = kw.min((w + p.pad).saturating_sub(wbase));
                        if kh_lo >= kh_hi || kw_lo >= kw_hi {
                            continue;
                        }
                        let sw0 = wbase + kw_lo - p.pad;
                        let taps = kw_hi - kw_lo;
                        for ici in 0..ci {
                            for ikh in kh_lo..kh_hi {
                                let sh = hbase + ikh - p.pad;
                                let grow = &mut gd[((ib * dci + ici) * h + sh) * w + sw0..][..taps];
                                let frow =
                                    &fd[((ici * co + ico) * kh + ikh) * kw + kw_lo..][..taps];
                                for (gv, fv) in grow.iter_mut().zip(frow) {
                                    *gv += g * fv;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad)
    }

    /// Gradient of [`Tensor::conv2d`] with respect to the filters.
    pub fn conv2d_backward_filter(
        out_grad: &Tensor,
        data: &Tensor,
        filter_shape: &Shape,
        p: Conv2dParams,
    ) -> Result<Tensor> {
        let (b, co, oh, ow) = (
            out_grad.shape().dim(0),
            out_grad.shape().dim(1),
            out_grad.shape().dim(2),
            out_grad.shape().dim(3),
        );
        let (ci, fco, kh, kw) =
            (filter_shape.dim(0), filter_shape.dim(1), filter_shape.dim(2), filter_shape.dim(3));
        let (dci, h, w) = (data.shape().dim(1), data.shape().dim(2), data.shape().dim(3));
        let mut grad = Tensor::zeros(filter_shape.clone());
        let ogd = out_grad.data();
        let dd = data.data();
        let gd = grad.data_mut();
        if p.stride == 1 && p.pad == 0 && kh == 1 && kw == 1 {
            // Pointwise fast path: each filter-gradient element is a dot
            // over the spatial extent of two rows that are already
            // contiguous (out-grad (b, co, s) and data (b, ci, s)) — no
            // packing needed. The running value is threaded through `acc`
            // so every element still collects its terms in (ib, s) order
            // with the `g == 0.0` skip, bit-identical to the general loop.
            let s = oh * ow;
            for ib in 0..b {
                for ico in 0..co {
                    let ogrow = &ogd[(ib * co + ico) * s..][..s];
                    for ici in 0..ci {
                        let drow = &dd[(ib * dci + ici) * s..][..s];
                        let idx = ici * fco + ico;
                        let mut acc = gd[idx];
                        for (gv, dv) in ogrow.iter().zip(drow) {
                            if *gv != 0.0 {
                                acc += gv * dv;
                            }
                        }
                        gd[idx] = acc;
                    }
                }
            }
            return Ok(grad);
        }
        // Mirrors conv2d_backward_data's restructuring; see the comment
        // there. Addition order into each filter-gradient element matches
        // the scalar loop's, so results stay bit-identical.
        for ib in 0..b {
            for ico in 0..co {
                for ioh in 0..oh {
                    let hbase = ioh * p.stride;
                    let kh_lo = p.pad.saturating_sub(hbase);
                    let kh_hi = kh.min((h + p.pad).saturating_sub(hbase));
                    for iow in 0..ow {
                        let g = ogd[((ib * co + ico) * oh + ioh) * ow + iow];
                        if g == 0.0 {
                            continue;
                        }
                        let wbase = iow * p.stride;
                        let kw_lo = p.pad.saturating_sub(wbase);
                        let kw_hi = kw.min((w + p.pad).saturating_sub(wbase));
                        if kh_lo >= kh_hi || kw_lo >= kw_hi {
                            continue;
                        }
                        let sw0 = wbase + kw_lo - p.pad;
                        let taps = kw_hi - kw_lo;
                        for ici in 0..ci {
                            for ikh in kh_lo..kh_hi {
                                let sh = hbase + ikh - p.pad;
                                let drow = &dd[((ib * dci + ici) * h + sh) * w + sw0..][..taps];
                                let grow =
                                    &mut gd[((ici * fco + ico) * kh + ikh) * kw + kw_lo..][..taps];
                                for (gv, dv) in grow.iter_mut().zip(drow) {
                                    *gv += g * dv;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad)
    }

    /// 2-D pooling over `(b, c, h, w)` data.
    pub fn pool2d(&self, p: PoolParams) -> Result<Tensor> {
        if self.shape().rank() != 4 {
            return Err(TensorError::Incompatible("pool2d expects rank-4 data".into()));
        }
        let (b, c, h, w) =
            (self.shape().dim(0), self.shape().dim(1), self.shape().dim(2), self.shape().dim(3));
        let oh = conv_out_extent(h, p.window, p.stride, 0);
        let ow = conv_out_extent(w, p.window, p.stride, 0);
        let mut out = Tensor::zeros(Shape::new(vec![b, c, oh, ow]));
        for ib in 0..b {
            for ic in 0..c {
                for ioh in 0..oh {
                    for iow in 0..ow {
                        let mut acc = match p.kind {
                            PoolKind::Max => f32::NEG_INFINITY,
                            PoolKind::Avg => 0.0,
                        };
                        for dh in 0..p.window {
                            for dw in 0..p.window {
                                let v =
                                    self.at(&[ib, ic, ioh * p.stride + dh, iow * p.stride + dw]);
                                match p.kind {
                                    PoolKind::Max => acc = acc.max(v),
                                    PoolKind::Avg => acc += v,
                                }
                            }
                        }
                        if p.kind == PoolKind::Avg {
                            acc /= (p.window * p.window) as f32;
                        }
                        out.set(&[ib, ic, ioh, iow], acc);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Global average pooling: `(b, c, h, w)` to `(b, c)`.
    pub fn global_avg_pool(&self) -> Result<Tensor> {
        if self.shape().rank() != 4 {
            return Err(TensorError::Incompatible("global_avg_pool expects rank-4 data".into()));
        }
        let (b, c, h, w) =
            (self.shape().dim(0), self.shape().dim(1), self.shape().dim(2), self.shape().dim(3));
        let mut out = Tensor::zeros(Shape::new(vec![b, c]));
        let norm = (h * w) as f32;
        for ib in 0..b {
            for ic in 0..c {
                let mut acc = 0.0;
                for ih in 0..h {
                    for iw in 0..w {
                        acc += self.at(&[ib, ic, ih, iw]);
                    }
                }
                out.set(&[ib, ic], acc / norm);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_extent_formula() {
        assert_eq!(conv_out_extent(8, 3, 1, 0), 6);
        assert_eq!(conv_out_extent(8, 3, 1, 1), 8);
        assert_eq!(conv_out_extent(8, 3, 2, 1), 4);
        assert_eq!(conv_out_extent(2, 3, 1, 0), 0);
    }

    #[test]
    fn conv1d_matches_hand_computation() {
        // data (1, 1, 4) = [1 2 3 4], filter (1, 1, 2) = [1 1] -> [3 5 7].
        let data = Tensor::from_vec(Shape::new(vec![1, 1, 4]), vec![1., 2., 3., 4.]).unwrap();
        let f = Tensor::from_vec(Shape::new(vec![1, 1, 2]), vec![1., 1.]).unwrap();
        let out = data.conv1d(&f, Conv1dParams::default()).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 3]);
        assert_eq!(out.data(), &[3., 5., 7.]);
    }

    #[test]
    fn conv1d_channel_mix() {
        // Two input channels summed with unit filters.
        let data = Tensor::from_vec(
            Shape::new(vec![1, 2, 3]),
            vec![1., 2., 3., 10., 20., 30.],
        )
        .unwrap();
        let f = Tensor::from_vec(Shape::new(vec![2, 1, 1]), vec![1., 1.]).unwrap();
        let out = data.conv1d(&f, Conv1dParams::default()).unwrap();
        assert_eq!(out.data(), &[11., 22., 33.]);
    }

    #[test]
    fn conv2d_identity_kernel() {
        let data = Tensor::from_vec(
            Shape::new(vec![1, 1, 2, 2]),
            vec![1., 2., 3., 4.],
        )
        .unwrap();
        let f = Tensor::from_vec(Shape::new(vec![1, 1, 1, 1]), vec![2.0]).unwrap();
        let out = data.conv2d(&f, Conv2dParams::default()).unwrap();
        assert_eq!(out.data(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn conv2d_padding_preserves_extent() {
        let data = Tensor::full(Shape::new(vec![1, 1, 4, 4]), 1.0);
        let f = Tensor::full(Shape::new(vec![1, 1, 3, 3]), 1.0);
        let out = data.conv2d(&f, Conv2dParams { stride: 1, pad: 1 }).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 4, 4]);
        // Center pixels see the full 3x3 window, corners only 2x2.
        assert_eq!(out.at(&[0, 0, 1, 1]), 9.0);
        assert_eq!(out.at(&[0, 0, 0, 0]), 4.0);
    }

    #[test]
    fn conv2d_stride_halves_extent() {
        let data = Tensor::full(Shape::new(vec![1, 1, 4, 4]), 1.0);
        let f = Tensor::full(Shape::new(vec![1, 1, 2, 2]), 1.0);
        let out = data.conv2d(&f, Conv2dParams { stride: 2, pad: 0 }).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4.0; 4]);
    }

    #[test]
    fn conv2d_grads_match_finite_difference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let data_shape = Shape::new(vec![1, 2, 4, 4]);
        let filt_shape = Shape::new(vec![2, 2, 3, 3]);
        let p = Conv2dParams { stride: 1, pad: 1 };
        let data = Tensor::from_vec(
            data_shape.clone(),
            (0..data_shape.volume()).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        let filt = Tensor::from_vec(
            filt_shape.clone(),
            (0..filt_shape.volume()).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        let out = data.conv2d(&filt, p).unwrap();
        // Loss = sum(out); so out_grad is all ones.
        let og = Tensor::full(out.shape().clone(), 1.0);
        let gd = Tensor::conv2d_backward_data(&og, &filt, &data_shape, p).unwrap();
        let gf = Tensor::conv2d_backward_filter(&og, &data, &filt_shape, p).unwrap();

        let eps = 1e-2f32;
        // Check a handful of coordinates by central differences.
        for probe in [0usize, 7, 19] {
            let mut dp = data.clone();
            dp.data_mut()[probe] += eps;
            let mut dm = data.clone();
            dm.data_mut()[probe] -= eps;
            let fd = (dp.conv2d(&filt, p).unwrap().sum_all()
                - dm.conv2d(&filt, p).unwrap().sum_all())
                / (2.0 * eps);
            assert!((fd - gd.data()[probe]).abs() < 1e-2, "data grad {probe}: {fd} vs {}", gd.data()[probe]);

            let mut fp = filt.clone();
            fp.data_mut()[probe] += eps;
            let mut fm = filt.clone();
            fm.data_mut()[probe] -= eps;
            let fd = (data.conv2d(&fp, p).unwrap().sum_all()
                - data.conv2d(&fm, p).unwrap().sum_all())
                / (2.0 * eps);
            assert!((fd - gf.data()[probe]).abs() < 1e-2, "filter grad {probe}: {fd} vs {}", gf.data()[probe]);
        }
    }

    #[test]
    fn pooling_modes() {
        let data = Tensor::from_vec(
            Shape::new(vec![1, 1, 2, 2]),
            vec![1., 2., 3., 4.],
        )
        .unwrap();
        let mx = data.pool2d(PoolParams { kind: PoolKind::Max, window: 2, stride: 2 }).unwrap();
        assert_eq!(mx.data(), &[4.0]);
        let avg = data.pool2d(PoolParams { kind: PoolKind::Avg, window: 2, stride: 2 }).unwrap();
        assert_eq!(avg.data(), &[2.5]);
        let g = data.global_avg_pool().unwrap();
        assert_eq!(g.shape().dims(), &[1, 1]);
        assert_eq!(g.data(), &[2.5]);
    }

    #[test]
    fn conv_rank_validation() {
        let bad = Tensor::zeros(Shape::new(vec![2, 2]));
        let f3 = Tensor::zeros(Shape::new(vec![1, 1, 1]));
        assert!(bad.conv1d(&f3, Conv1dParams::default()).is_err());
        let f4 = Tensor::zeros(Shape::new(vec![1, 1, 1, 1]));
        assert!(bad.conv2d(&f4, Conv2dParams::default()).is_err());
        assert!(bad.pool2d(PoolParams { kind: PoolKind::Max, window: 1, stride: 1 }).is_err());
    }

    #[test]
    fn conv1d_batch_split_is_partitionable() {
        // Fig. 2(a): splitting the batch dimension and concatenating outputs
        // reproduces the unpartitioned result.
        let data = Tensor::from_vec(
            Shape::new(vec![2, 1, 3]),
            vec![1., 2., 3., 4., 5., 6.],
        )
        .unwrap();
        let f = Tensor::from_vec(Shape::new(vec![1, 2, 2]), vec![1., -1., 0.5, 2.]).unwrap();
        let whole = data.conv1d(&f, Conv1dParams::default()).unwrap();
        let d0 = data.slice(0, 0, 1).unwrap();
        let d1 = data.slice(0, 1, 2).unwrap();
        let stitched = Tensor::concat(
            &[d0.conv1d(&f, Conv1dParams::default()).unwrap(), d1.conv1d(&f, Conv1dParams::default()).unwrap()],
            0,
        )
        .unwrap();
        assert!(stitched.allclose(&whole, 1e-6));
    }

    #[test]
    fn conv1d_channel_split_requires_reduction() {
        // Fig. 2(b): splitting the input-channel dimension yields partial
        // outputs whose sum equals the unpartitioned result.
        let data = Tensor::from_vec(
            Shape::new(vec![1, 2, 3]),
            vec![1., 2., 3., 4., 5., 6.],
        )
        .unwrap();
        let f = Tensor::from_vec(Shape::new(vec![2, 1, 2]), vec![1., -1., 2., 0.5]).unwrap();
        let whole = data.conv1d(&f, Conv1dParams::default()).unwrap();
        let d0 = data.slice(1, 0, 1).unwrap();
        let d1 = data.slice(1, 1, 2).unwrap();
        let f0 = f.slice(0, 0, 1).unwrap();
        let f1 = f.slice(0, 1, 2).unwrap();
        let partial = d0
            .conv1d(&f0, Conv1dParams::default())
            .unwrap()
            .add(&d1.conv1d(&f1, Conv1dParams::default()).unwrap())
            .unwrap();
        assert!(partial.allclose(&whole, 1e-6));
    }
}
