//! Baseline partition algorithms compared in §7.3 / Fig. 10.
//!
//! - **AllRow-Greedy** partitions every tensor along its first dimension and
//!   picks each operator's best strategy under that constraint (for CNNs
//!   this reproduces the "one weird trick" batch-parallel layout).
//! - **Spartan** greedily fixes the largest tensor first, choosing the
//!   dimension that minimizes the cost of its incident operators, then the
//!   next largest, and so on.
//! - **EqualChop** runs Tofu's DP but chops each tensor `k` ways along a
//!   single dimension (no recursion, hence no multi-dimensional tilings).
//! - **Icml18** is the full recursive search *without* the output-reduction
//!   (Case-2) strategies the paper shows it misses.
//! - **Tofu** is the full recursive search.

use std::collections::BTreeMap;

use tofu_graph::{Graph, TensorId};

use crate::coarsen::coarsen;
use crate::dp::{NodeChoice, StepPlan};
use crate::recursive::{
    factorize, partition_with_coarse, PartitionOptions, PartitionPlan, StepRecord,
};
use crate::spec::{
    input_fetch_bytes, legal_specs, output_bytes, respec_bytes, ConcreteOut, TensorSpec,
};
use crate::strategies::{node_strategies, strategy_feasible, NodeStrategy, ShapeView};
use crate::Result;

/// The partition algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Tofu's full recursive search.
    Tofu,
    /// All tensors split along dimension 0; operators chosen greedily.
    AllRowGreedy,
    /// Largest-tensor-first greedy dimension assignment.
    Spartan,
    /// Single `k`-way DP step (one dimension per tensor).
    EqualChop,
    /// Recursive search without output-reduction strategies.
    Icml18,
}

impl Algorithm {
    /// Human-readable name matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Tofu => "Tofu",
            Algorithm::AllRowGreedy => "AllRow-Greedy",
            Algorithm::Spartan => "Spartan",
            Algorithm::EqualChop => "EqualChop",
            Algorithm::Icml18 => "ICML18",
        }
    }

    /// All algorithms, in the paper's Fig. 10 order.
    pub fn all() -> [Algorithm; 5] {
        [
            Algorithm::AllRowGreedy,
            Algorithm::Spartan,
            Algorithm::EqualChop,
            Algorithm::Icml18,
            Algorithm::Tofu,
        ]
    }
}

/// Runs the chosen algorithm, producing a [`PartitionPlan`] usable by the
/// graph generator and the simulator.
pub fn run(g: &Graph, algorithm: Algorithm, workers: usize) -> Result<PartitionPlan> {
    let started = std::time::Instant::now();
    let opts = PartitionOptions { workers, ..Default::default() };
    match algorithm {
        Algorithm::Tofu => {
            partition_with_coarse(g, &coarsen(g), &factorize(workers)?, &opts, started)
        }
        Algorithm::Icml18 => {
            let opts = PartitionOptions { allow_reduce: false, ..opts };
            partition_with_coarse(g, &coarsen(g), &factorize(workers)?, &opts, started)
        }
        Algorithm::EqualChop => {
            partition_with_coarse(g, &coarsen(g), &[workers], &opts, started)
        }
        Algorithm::AllRowGreedy => greedy_plan(g, workers, started, |_, _| Some(0)),
        Algorithm::Spartan => spartan_plan(g, workers, started),
    }
}

/// Builds a single-step plan from a per-tensor dimension choice function,
/// then picks each node's cheapest strategy under those specs.
fn greedy_plan(
    g: &Graph,
    workers: usize,
    started: std::time::Instant,
    choose_dim: impl Fn(&Graph, TensorId) -> Option<usize>,
) -> Result<PartitionPlan> {
    let view = ShapeView::from_graph(g);
    let mut specs: Vec<TensorSpec> = Vec::with_capacity(g.num_tensors());
    for t in g.tensor_ids() {
        let legal = legal_specs(view.shape(t), workers);
        let wanted = choose_dim(g, t).map(TensorSpec::Split);
        let spec = wanted
            .filter(|s| legal.contains(s))
            .unwrap_or_else(|| legal[0]);
        specs.push(spec);
    }
    finish_single_step(g, &view, specs, workers, started)
}

/// Spartan's largest-tensor-first assignment.
fn spartan_plan(
    g: &Graph,
    workers: usize,
    started: std::time::Instant,
) -> Result<PartitionPlan> {
    let view = ShapeView::from_graph(g);
    // Order tensors by descending size.
    let mut order: Vec<TensorId> = g.tensor_ids().collect();
    order.sort_by_key(|&t| std::cmp::Reverse(view.shape(t).volume()));

    // Strategy lists per node, computed once.
    let mut strategies: Vec<Vec<NodeStrategy>> = Vec::with_capacity(g.num_nodes());
    for id in g.node_ids() {
        let out_shape = view.shape(g.node(id).output).clone();
        strategies.push(
            node_strategies(g, id, &view)?
                .into_iter()
                .filter(|s| strategy_feasible(s, &out_shape, workers))
                .collect(),
        );
    }

    let mut assigned: BTreeMap<TensorId, TensorSpec> = BTreeMap::new();
    for &t in &order {
        let legal = legal_specs(view.shape(t), workers);
        // Incident nodes: producer and consumers.
        let mut incident: Vec<tofu_graph::NodeId> = g.consumers(t);
        if let Some(p) = g.producer(t) {
            incident.push(p);
        }
        let mut best = (f64::INFINITY, legal[0]);
        for &candidate in &legal {
            let mut cost = 0.0;
            for &n in &incident {
                let mut trial = assigned.clone();
                trial.insert(t, candidate);
                cost += node_min_cost(g, &view, n, &strategies[n.0], &trial, workers).0;
            }
            if cost < best.0 {
                best = (cost, candidate);
            }
        }
        assigned.insert(t, best.1);
    }
    let specs: Vec<TensorSpec> = g.tensor_ids().map(|t| assigned[&t]).collect();
    finish_single_step(g, &view, specs, workers, started)
}

/// Minimum cost (and strategy index) of one node given partial/total specs;
/// unassigned tensors are treated as free (cost 0 contributions).
fn node_min_cost(
    g: &Graph,
    view: &ShapeView,
    n: tofu_graph::NodeId,
    strategies: &[NodeStrategy],
    specs: &BTreeMap<TensorId, TensorSpec>,
    ways: usize,
) -> (f64, usize) {
    let node = g.node(n);
    let mut best = (f64::INFINITY, 0usize);
    for (idx, st) in strategies.iter().enumerate() {
        let mut cost = 0.0;
        for (i, &t) in node.inputs.iter().enumerate() {
            if let Some(&spec) = specs.get(&t) {
                if let Some(req) = st.inputs.get(i) {
                    cost += input_fetch_bytes(view.shape(t), spec, req, ways);
                }
            }
        }
        match st.out {
            ConcreteOut::Split(c) => {
                if let Some(&spec) = specs.get(&node.output) {
                    cost += respec_bytes(view.shape(node.output), TensorSpec::Split(c), spec, ways);
                }
            }
            ConcreteOut::Reduce => {
                cost += output_bytes(view.shape(node.output), ConcreteOut::Reduce, ways);
            }
        }
        if cost < best.0 {
            best = (cost, idx);
        }
    }
    if best.0.is_infinite() {
        best = (f64::INFINITY, 0);
    }
    best
}

/// Completes a single-step plan: chooses per-node strategies, totals the
/// cost, and wraps everything into a [`PartitionPlan`].
fn finish_single_step(
    g: &Graph,
    view: &ShapeView,
    specs: Vec<TensorSpec>,
    workers: usize,
    started: std::time::Instant,
) -> Result<PartitionPlan> {
    let spec_map: BTreeMap<TensorId, TensorSpec> =
        g.tensor_ids().map(|t| (t, specs[t.0])).collect();
    let mut node_choice: Vec<NodeChoice> = Vec::with_capacity(g.num_nodes());
    let mut total = 0.0;
    for id in g.node_ids() {
        let out_shape = view.shape(g.node(id).output).clone();
        let list: Vec<NodeStrategy> = node_strategies(g, id, view)?
            .into_iter()
            .filter(|s| strategy_feasible(s, &out_shape, workers))
            .collect();
        if list.is_empty() {
            // Scalar-output nodes (e.g. the gradient seed) have no strategy;
            // replicate their (tiny) computation on every worker.
            let node = g.node(id);
            for &t in &node.inputs {
                total += input_fetch_bytes(
                    view.shape(t),
                    spec_map[&t],
                    &crate::spec::ConcreteReq::Replicated,
                    workers,
                );
            }
            node_choice.push(NodeChoice::Ewise(TensorSpec::Replicated));
            continue;
        }
        let (cost, idx) = node_min_cost(g, view, id, &list, &spec_map, workers);
        total += cost;
        node_choice.push(NodeChoice::Strategy(list[idx].clone()));
    }
    let plan = StepPlan { ways: workers, tensor_spec: specs.clone(), node_choice, comm_bytes: total };
    let tiling: Vec<Vec<Option<usize>>> = specs.iter().map(|s| vec![s.dim()]).collect();
    Ok(PartitionPlan {
        workers,
        steps: vec![StepRecord { ways: workers, groups_before: 1, plan }],
        tiling,
        search_time: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_graph::{autodiff, Attrs};
    use tofu_tensor::Shape;

    fn model(batch: usize, hidden: usize) -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![batch, hidden]));
        let w1 = g.add_weight("w1", Shape::new(vec![hidden, hidden]));
        let w2 = g.add_weight("w2", Shape::new(vec![hidden, 16]));
        let labels = g.add_input("labels", Shape::new(vec![batch]));
        let h = g.add_op("matmul", "fc1", &[x, w1], Attrs::new()).unwrap();
        let a = g.add_op("tanh", "act", &[h], Attrs::new()).unwrap();
        let y = g.add_op("matmul", "fc2", &[a, w2], Attrs::new()).unwrap();
        let loss = g.add_op("softmax_ce", "loss", &[y, labels], Attrs::new()).unwrap();
        autodiff::backward(&mut g, loss, &[w1, w2]).unwrap();
        g
    }

    #[test]
    fn every_algorithm_produces_a_plan() {
        let g = model(32, 64);
        for alg in Algorithm::all() {
            let plan = run(&g, alg, 8).unwrap_or_else(|e| panic!("{}: {e}", alg.label()));
            assert!(plan.total_comm_bytes().is_finite(), "{}", alg.label());
            assert_eq!(plan.workers, 8);
        }
    }

    #[test]
    fn tofu_is_at_least_as_good_as_every_baseline() {
        // The headline of Fig. 10: Tofu's plan has the lowest communication.
        let g = model(64, 256);
        let tofu = run(&g, Algorithm::Tofu, 8).unwrap().total_comm_bytes();
        for alg in [Algorithm::AllRowGreedy, Algorithm::Spartan, Algorithm::EqualChop, Algorithm::Icml18]
        {
            let cost = run(&g, alg, 8).unwrap().total_comm_bytes();
            assert!(
                tofu <= cost * 1.01 + 1024.0,
                "{} beat Tofu: {cost} < {tofu}",
                alg.label()
            );
        }
    }

    #[test]
    fn allrow_splits_everything_along_dim_zero() {
        let g = model(32, 64);
        let plan = run(&g, Algorithm::AllRowGreedy, 8).unwrap();
        let x = g.tensor_by_name("x").unwrap();
        assert_eq!(plan.tiling[x.0], vec![Some(0)]);
        let w1 = g.tensor_by_name("w1").unwrap();
        assert_eq!(plan.tiling[w1.0], vec![Some(0)]);
    }

    #[test]
    fn equalchop_has_one_step() {
        let g = model(32, 64);
        let plan = run(&g, Algorithm::EqualChop, 8).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].ways, 8);
    }

    #[test]
    fn icml18_never_uses_reduction_when_avoidable() {
        let g = model(32, 64);
        let plan = run(&g, Algorithm::Icml18, 8).unwrap();
        for step in &plan.steps {
            for (i, choice) in step.plan.node_choice.iter().enumerate() {
                if let NodeChoice::Strategy(st) = choice {
                    if matches!(st.out, ConcreteOut::Reduce) {
                        // Only allowed when the node has no non-reduce
                        // strategy at all (the scalar loss).
                        let node = g.node(tofu_graph::NodeId(i));
                        assert_eq!(node.op, "softmax_ce", "unexpected reduce on {}", node.name);
                    }
                }
            }
        }
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(Algorithm::Tofu.label(), "Tofu");
        assert_eq!(Algorithm::AllRowGreedy.label(), "AllRow-Greedy");
        assert_eq!(Algorithm::Icml18.label(), "ICML18");
        assert_eq!(Algorithm::all().len(), 5);
    }
}
