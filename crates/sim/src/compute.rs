//! The per-operator compute-time model.
//!
//! Times are flop counts over peak throughput scaled by an op-dependent
//! utilization curve. Two curve shapes drive the paper's §7.2 observations:
//! matrix multiplication loses utilization quickly as its smallest dimension
//! (usually the batch) shrinks — which is why SmallBatch collapses on RNNs —
//! while convolutions keep high utilization even at tiny batches thanks to
//! spatial parallelism — which is why SmallBatch stays competitive on
//! WResNet-50-4.

use tofu_graph::{lookup, Graph, NodeId, OpCategory};
use tofu_tensor::Shape;

use crate::machine::Machine;

/// Utilization of a matmul-family kernel given its `M, N, K` extents.
pub fn matmul_utilization(m: usize, n: usize, k: usize) -> f64 {
    let smallest = m.min(n).min(k) as f64;
    (smallest / 512.0).sqrt().clamp(0.03, 1.0)
}

/// Utilization of a convolution kernel given its output parallelism.
pub fn conv_utilization(batch: usize, spatial: usize) -> f64 {
    let work = (batch * spatial) as f64;
    (work / 2048.0).sqrt().clamp(0.25, 1.0)
}

/// Estimated execution time of one node, in seconds.
pub fn node_seconds(g: &Graph, node: NodeId, machine: &Machine) -> f64 {
    let n = g.node(node);
    let def = match lookup(&n.op) {
        Ok(d) => d,
        Err(_) => return machine.launch_overhead,
    };
    let in_shapes: Vec<Shape> = n.inputs.iter().map(|&t| g.tensor(t).shape.clone()).collect();
    let out_shape = &g.tensor(n.output).shape;
    let flops = (def.flops)(&in_shapes, out_shape, &n.attrs);

    let bytes_touched: f64 = in_shapes.iter().map(|s| s.bytes() as f64).sum::<f64>()
        + out_shape.bytes() as f64;
    let bandwidth_time = bytes_touched / machine.mem_bandwidth;

    let util = match def.category {
        OpCategory::Linalg => {
            let (m, nn) = if out_shape.rank() >= 2 {
                (out_shape.dim(out_shape.rank() - 2), out_shape.dim(out_shape.rank() - 1))
            } else {
                (out_shape.volume().max(1), 1)
            };
            let k = if m * nn > 0 { (flops / 2.0 / (m * nn) as f64) as usize } else { 1 };
            matmul_utilization(m.max(1), nn.max(1), k.max(1))
        }
        OpCategory::Convolution => {
            let (b, spatial) = if out_shape.rank() == 4 {
                (out_shape.dim(0), out_shape.dim(2) * out_shape.dim(3))
            } else if out_shape.rank() == 3 {
                (out_shape.dim(0), out_shape.dim(2))
            } else {
                (1, out_shape.volume())
            };
            conv_utilization(b.max(1), spatial.max(1))
        }
        // Everything else is bandwidth-bound.
        _ => 1.0,
    };

    let flop_time = flops / (machine.peak_flops * util);
    flop_time.max(bandwidth_time) + machine.launch_overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_graph::Attrs;

    #[test]
    fn matmul_utilization_falls_with_batch() {
        let big = matmul_utilization(512, 4096, 4096);
        let small = matmul_utilization(16, 4096, 4096);
        assert!(big > 0.9);
        assert!(small < 0.25);
        assert!(small >= 0.03);
    }

    #[test]
    fn conv_utilization_stays_high_at_small_batch() {
        // 56x56 output at batch 1 still keeps a conv busy (§7.2).
        let u = conv_utilization(1, 56 * 56);
        assert!(u > 0.9, "conv util {u}");
        // Tiny 7x7 at batch 1 finally drops.
        let u = conv_utilization(1, 49);
        assert!(u < 0.5);
    }

    #[test]
    fn matmul_time_scales_with_flops() {
        let m = Machine::p2_8xlarge();
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new(vec![512, 1024]));
        let b = g.add_weight("b", Shape::new(vec![1024, 1024]));
        let y = g.add_op("matmul", "mm", &[a, b], Attrs::new()).unwrap();
        let t_small = node_seconds(&g, g.producer(y).unwrap(), &m);

        let a2 = g.add_input("a2", Shape::new(vec![512, 4096]));
        let b2 = g.add_weight("b2", Shape::new(vec![4096, 4096]));
        let y2 = g.add_op("matmul", "mm2", &[a2, b2], Attrs::new()).unwrap();
        let t_big = node_seconds(&g, g.producer(y2).unwrap(), &m);
        assert!(t_big > 5.0 * t_small, "{t_big} vs {t_small}");
    }

    #[test]
    fn elementwise_is_bandwidth_bound() {
        let m = Machine::p2_8xlarge();
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![1 << 20]));
        let y = g.add_op("relu", "r", &[x], Attrs::new()).unwrap();
        let t = node_seconds(&g, g.producer(y).unwrap(), &m);
        // 8 MiB in + out over 160 GB/s plus launch overhead.
        let expected = (2.0 * 4.0 * (1 << 20) as f64) / 160e9 + 10e-6;
        assert!((t - expected).abs() / expected < 0.05, "{t} vs {expected}");
    }

    #[test]
    fn every_node_costs_at_least_the_launch() {
        let m = Machine::p2_8xlarge();
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![1]));
        let y = g.add_op("relu", "r", &[x], Attrs::new()).unwrap();
        assert!(node_seconds(&g, g.producer(y).unwrap(), &m) >= m.launch_overhead);
    }
}
