#!/usr/bin/env bash
# The repo's CI gate: lint with warnings-as-errors, then the full test suite.
# Usage: scripts/check.sh  (optionally TOFU_SEED=n for a shifted random stream)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
# The fault suite must abort runs in milliseconds; a hang here means the
# fail-fast path regressed, so cap it hard rather than stalling CI. The
# fault suites run at IntegrityLevel::Full (the default) — lowering the
# level disables the checks the injected message faults rely on, and the
# runtime rejects such plans outright.
timeout 300 cargo test -q -p tofu-runtime --test faults
# Elastic degraded-mode recovery, fleet churn (leave/rejoin scale-up) and
# checkpoint resharding: permanent device loss must end in success or a
# typed Unrecoverable, and a pending join must never park workers at a
# yield barrier forever — so these get the same hard cap.
timeout 300 cargo test -q -p tofu-runtime --test elastic --test reshard --test churn
# Durable checkpoints: codec/store/commit units + proptests in tofu-durable,
# then the whole-process crash-restart suite (simulated crash, disk-fault
# injection, restart at a different width). Recovery must be bit-identical
# and every injected corruption detected via a typed rejection.
timeout 300 cargo test -q -p tofu-durable
timeout 300 cargo test -q -p tofu-runtime --test durable
# The search-optimality suites (brute-force oracle + differential fuzzing
# against the reference engine) are exhaustive by design; cap them so a
# search-space blowup fails CI instead of stalling it.
timeout 600 cargo test -q -p tofu-core --test oracle --test differential
# The gradient-check oracle finite-differences every differentiable op (and
# proptests the dense kernels over random shapes); the strategy-discovery
# suite proves the DP rediscovers megatron-style transformer splits; the
# transformer runtime suite diffs a sharded decoder training step against
# the single-device executor. All bounded, so cap them.
timeout 600 cargo test -q -p tofu-graph --test gradcheck
timeout 300 cargo test -q -p tofu-core --test transformer_strategies
timeout 300 cargo test -q -p tofu-runtime --test transformer
# Shared-cache stress (8 threads hammering one SearchCaches) and the plan
# service's protocol/e2e suites involve cross-thread blocking; a deadlock
# must fail CI rather than stall it.
timeout 300 cargo test -q -p tofu-core --test concurrent_cache
timeout 300 cargo test -q -p tofu-serve
cargo test --workspace -q
# Record the runtime scaling numbers (exits non-zero if us-per-op regresses
# more than 25% against the committed BENCH_runtime.json, or if the
# transport copies more payload bytes per message than the baseline — the
# zero-copy data plane must stay zero-copy).
timeout 600 cargo run --release -q -p tofu-bench --bin runtime_scaling
# Record the fault-matrix detection latencies and recovery outcomes
# (exits non-zero unless every injected fault recovers bit-identically,
# including the two whole-process crash-restart rows).
cargo run --release -q -p tofu-bench --bin fault_matrix
# Record the durability matrix: whole-process crashes at early/mid/late
# durable commits × every disk-fault family, restarting at alternating
# widths (exits non-zero on any non-exact recovery, any checksum-undetected
# corruption, or any spurious rejection on a clean row).
timeout 300 cargo run --release -q -p tofu-bench --bin durability_matrix
# Record the elastic-recovery ladder latencies (exits non-zero unless every
# degraded run is bit-identical to its surviving-width baseline and warm
# replans are no slower than cold searches).
timeout 300 cargo run --release -q -p tofu-bench --bin elastic_recovery
# Record the fleet-churn recovery latencies (exits non-zero unless every
# churned run ends bit-identical to an undisturbed run at its final width
# resumed from the same snapshot cut, at least one grow event fired, and
# the warm passes' replans beat the cold passes' in aggregate).
timeout 300 cargo run --release -q -p tofu-bench --bin fleet_churn
# Record the search-engine scaling numbers (exits non-zero if the optimized
# DP's plan cost differs from the reference engine's, or if it stops
# exploring fewer states on the nontrivial searches).
cargo run --release -q -p tofu-bench --bin search_scaling
# Record the transformer decoder scaling curves (exits non-zero unless the
# search finds multi-axis strategies at every multi-worker point — exact
# megatron structure at seq=512 — and the simulated comm bytes match the
# committed BENCH_transformer.json exactly).
timeout 300 cargo run --release -q -p tofu-bench --bin transformer_scaling
# Record plan-service throughput/latency (exits non-zero if any served plan
# differs byte-for-byte from a local partition_cached run, the warm hit-rate
# is zero, or the single-flight counters don't add up).
timeout 300 cargo run --release -q -p tofu-bench --bin plan_serve
# Emit a unified Chrome trace for a 2-worker MLP; trace_dump re-parses its
# own output and exits non-zero unless the JSON is valid, non-empty, and has
# a measured + predicted lane per device (plus the DP-search counters).
cargo run --release -q -p tofu-bench --bin trace_dump -- --model mlp --workers 2
python3 - <<'EOF'
import json
d = json.load(open("TRACE_mlp.json"))
evs = d["traceEvents"]
assert evs, "TRACE_mlp.json has no events"
pids = {e["pid"] for e in evs}
for pid in (1, 100, 101, 200, 201):
    assert pid in pids, f"TRACE_mlp.json missing lane pid={pid}"
print(f"TRACE_mlp.json ok: {len(evs)} events, lanes {sorted(pids)}")
EOF
