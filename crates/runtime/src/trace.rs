//! Per-run event traces: what each worker executed when, what moved over
//! each link and what memory the buffer pools actually held — the measured
//! counterpart to `tofu-sim`'s predictions.

use std::time::Duration;

use tofu_graph::NodeId;

/// One executed node on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEvent {
    /// Node of the sharded graph.
    pub node: NodeId,
    /// Start offset from the run epoch (includes any wait for remote
    /// pieces a `multi_fetch` performs).
    pub start: Duration,
    /// End offset from the run epoch.
    pub end: Duration,
}

/// One worker's side of a run.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Logical device id.
    pub device: usize,
    /// Executed nodes in schedule order.
    pub ops: Vec<OpEvent>,
    /// Sum of op durations (wall time the worker spent executing or waiting
    /// inside ops, as opposed to being done).
    pub busy: Duration,
    /// High-water mark of the planner-seeded buffer pool.
    pub pool_peak_bytes: u64,
    /// Bytes of leaf shards (inputs/weights) resident for the whole run.
    pub persistent_bytes: u64,
    /// Bytes this worker pushed to other devices.
    pub bytes_sent: u64,
    /// Bytes this worker received from other devices.
    pub bytes_received: u64,
    /// Transport payload bytes *copied* between producer send and consumer
    /// stash (beyond the one extraction into a slab buffer). Zero on the
    /// fault-free zero-copy path — pieces travel by refcount; only injected
    /// corruption faults divert through an owned buffer and charge here.
    pub transport_copy_bytes: u64,
    /// False when the worker stopped early (its own failure or a peer's
    /// abort); `ops` then holds only the prefix it completed.
    pub completed: bool,
    /// Set when the worker resumed from a checkpoint: the local schedule
    /// position execution restarted at (`ops` covers positions from here).
    pub resumed_from: Option<usize>,
}

impl WorkerTrace {
    /// Peak device footprint: persistent shards plus the pool high-water.
    pub fn peak_memory_bytes(&self) -> u64 {
        self.pool_peak_bytes + self.persistent_bytes
    }
}

/// Traffic over one directed device pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStat {
    /// Sending device.
    pub src: usize,
    /// Receiving device.
    pub dst: usize,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Messages (one per transferred piece).
    pub messages: u64,
}

/// The full measured record of one multi-worker run.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Per-worker traces, indexed by device.
    pub workers: Vec<WorkerTrace>,
    /// Per-link traffic, sorted by `(src, dst)`; quiet links are omitted.
    pub links: Vec<LinkStat>,
    /// Wall-clock time from run start to the last worker finishing.
    pub wall: Duration,
}

impl RunTrace {
    /// Total bytes moved between devices.
    pub fn comm_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes).sum()
    }

    /// Total nodes executed across workers.
    pub fn ops_executed(&self) -> usize {
        self.workers.iter().map(|w| w.ops.len()).sum()
    }

    /// True when the trace is a post-mortem: a worker's trace is missing
    /// (panic) or marked incomplete (abort).
    pub fn is_partial(&self) -> bool {
        self.workers.iter().any(|w| !w.completed)
    }

    /// Largest per-worker peak footprint.
    pub fn max_device_memory_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.peak_memory_bytes()).max().unwrap_or(0)
    }

    /// A compact human-readable table of the run.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "wall {:?}; {} ops; {} B over {} links",
            self.wall,
            self.ops_executed(),
            self.comm_bytes(),
            self.links.len()
        );
        for w in &self.workers {
            let _ = writeln!(
                s,
                "  worker {}: {} ops, busy {:?}, pool peak {} B, persistent {} B, sent {} B, recv {} B{}",
                w.device,
                w.ops.len(),
                w.busy,
                w.pool_peak_bytes,
                w.persistent_bytes,
                w.bytes_sent,
                w.bytes_received,
                if w.completed { "" } else { " [ABORTED]" }
            );
        }
        for l in &self.links {
            let _ = writeln!(
                s,
                "  link {} -> {}: {} B in {} messages",
                l.src, l.dst, l.bytes, l.messages
            );
        }
        s
    }
}
