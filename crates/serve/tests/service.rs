//! End-to-end service semantics: byte-identity against the local search,
//! response caching, single-flight deduplication, admission control and
//! deadlines.

use std::sync::Arc;

use tofu_core::recursive::{partition_cached, PartitionOptions};
use tofu_core::SearchCaches;
use tofu_models::{mlp, MlpConfig};
use tofu_serve::client::{ClientError, PlanClient};
use tofu_serve::protocol::{plan_to_json, ErrorCode};
use tofu_serve::server::{PlanServer, ServeConfig};

fn model(batch: usize) -> tofu_graph::Graph {
    mlp(&MlpConfig { batch, dims: vec![48, 24], classes: 24, with_updates: true })
        .expect("model")
        .graph
}

#[test]
fn served_plans_are_byte_identical_to_local_search() {
    let server = PlanServer::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.addr()).expect("connect");

    let mut local_caches = SearchCaches::new();
    for (batch, workers) in [(24usize, 4usize), (24, 8), (48, 6)] {
        let g = model(batch);
        let opts = PartitionOptions { workers, ..Default::default() };
        let served = client.partition("tenant-a", &g, &opts, None).expect("served plan");
        assert!(!served.cached, "first request for this fingerprint must be cold");

        let local = partition_cached(&g, &opts, &mut local_caches, None).expect("local plan");
        assert_eq!(
            served.plan.to_json(),
            plan_to_json(&local).to_json(),
            "served plan differs from single-threaded partition_cached \
             (batch {batch}, {workers} workers)"
        );

        // Second identical request answers from the response cache with the
        // exact same bytes.
        let again = client.partition("tenant-b", &g, &opts, None).expect("cached plan");
        assert!(again.cached, "identical repeat must be a response-cache hit");
        assert_eq!(again.plan.to_json(), served.plan.to_json());
        assert_eq!(again.fingerprint, served.fingerprint);
    }
    server.shutdown();
}

#[test]
fn concurrent_identical_requests_single_flight() {
    let server = PlanServer::bind(
        "127.0.0.1:0",
        ServeConfig { solver_threads: 2, queue_cap: 64, ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr();
    let g = Arc::new(model(24));
    let opts = PartitionOptions { workers: 8, ..Default::default() };

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                client
                    .partition(&format!("tenant-{}", i % 3), &g, &opts, None)
                    .expect("partition")
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("client thread")).collect();

    // All eight answers carry identical plan bytes.
    let first = results[0].plan.to_json();
    for r in &results {
        assert_eq!(r.plan.to_json(), first);
    }

    // Exactly one request computed; the rest joined the flight or hit the
    // response cache (depending on arrival timing).
    let c = server.counters();
    let load = |a: &std::sync::atomic::AtomicU64| a.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(load(&c.requests), 8);
    assert_eq!(load(&c.misses), 1, "single-flight must admit exactly one solver run");
    assert_eq!(load(&c.hits) + load(&c.joined), 7);
    assert_eq!(load(&c.rejected), 0);
    server.shutdown();
}

#[test]
fn zero_queue_cap_rejects_cold_requests_as_overloaded() {
    let server = PlanServer::bind(
        "127.0.0.1:0",
        ServeConfig { solver_threads: 1, queue_cap: 0, ..Default::default() },
    )
    .expect("bind");
    let mut client = PlanClient::connect(server.addr()).expect("connect");
    let g = model(24);
    let opts = PartitionOptions { workers: 4, ..Default::default() };
    match client.partition("t", &g, &opts, None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded, got {other:?}"),
    }
    // The rejected fingerprint left no stuck in-flight entry: a later
    // request on a server with capacity... here same server, still cap 0,
    // so it must reject again (not hang on a poisoned Pending entry).
    match client.partition("t", &g, &opts, None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded again, got {other:?}"),
    }
    let c = server.counters();
    assert_eq!(c.rejected.load(std::sync::atomic::Ordering::Relaxed), 2);
    server.shutdown();
}

#[test]
fn zero_deadline_is_deadline_missed() {
    let server = PlanServer::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.addr()).expect("connect");
    let g = model(24);
    let opts = PartitionOptions { workers: 4, ..Default::default() };
    match client.partition("t", &g, &opts, Some(0)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::DeadlineMissed),
        other => panic!("expected deadline_missed, got {other:?}"),
    }
    // Without a deadline the same request then succeeds — the missed
    // deadline left no permanent damage.
    client.partition("t", &g, &opts, None).expect("no-deadline request succeeds");
    server.shutdown();
}

#[test]
fn stats_document_reports_serve_and_cache_layers() {
    let server = PlanServer::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.addr()).expect("connect");
    let g = model(24);
    let opts = PartitionOptions { workers: 4, ..Default::default() };
    client.partition("t", &g, &opts, None).expect("cold");
    client.partition("t", &g, &opts, None).expect("warm");

    let stats = client.stats().expect("stats");
    let serve = stats.get("serve").expect("serve section");
    let num = |sec: &tofu_obs::json::Json, k: &str| {
        sec.get(k).and_then(tofu_obs::json::Json::as_f64).unwrap_or(-1.0)
    };
    assert_eq!(num(serve, "requests"), 2.0);
    assert_eq!(num(serve, "hits"), 1.0);
    assert_eq!(num(serve, "misses"), 1.0);

    let cache = stats.get("cache").expect("cache section");
    assert!(num(cache, "plan_misses") >= 1.0, "underlying plan cache saw the search");
    assert!(num(cache, "plan_entries") >= 1.0);
    assert!(num(cache, "strategy_entries") >= 1.0);
    // The snapshot is non-draining: asking twice must not zero anything.
    let stats2 = client.stats().expect("stats again");
    let cache2 = stats2.get("cache").expect("cache section");
    assert_eq!(num(cache2, "plan_misses"), num(cache, "plan_misses"));
    server.shutdown();
}

#[test]
fn drain_answers_every_queued_request_and_turns_late_arrivals_away() {
    // One solver thread so distinct cold requests pile up in the queue.
    let server = PlanServer::bind(
        "127.0.0.1:0",
        ServeConfig { solver_threads: 1, queue_cap: 64, ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr();
    let g = Arc::new(model(24));

    // Six distinct fingerprints (same graph, different widths), each on its
    // own connection, all in flight at once.
    let handles: Vec<_> = [2usize, 3, 4, 6, 8, 12]
        .into_iter()
        .map(|workers| {
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                let opts = PartitionOptions { workers, ..Default::default() };
                client.partition("tenant-drain", &g, &opts, None)
            })
        })
        .collect();

    // Wait until all six were *admitted* (miss counter bumps only after a
    // successful queue push), so none can race the drain latch below.
    let load = |a: &std::sync::atomic::AtomicU64| a.load(std::sync::atomic::Ordering::Relaxed);
    while load(&server.counters().misses) < 6 {
        std::thread::yield_now();
    }
    server.begin_drain();

    // A request arriving after the drain began gets the typed answer, on a
    // still-open connection.
    let mut late = PlanClient::connect(addr).expect("late connect");
    let opts = PartitionOptions { workers: 24, ..Default::default() };
    match late.partition("tenant-late", &g, &opts, None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }

    // Every admitted request still gets its plan: nothing is dropped.
    for h in handles {
        let served = h.join().expect("client thread").expect("queued request must be answered");
        assert!(!served.plan.to_json().is_empty());
    }

    // Stats still serve while draining, and say so.
    let stats = late.stats().expect("stats during drain");
    let serve = stats.get("serve").expect("serve section");
    assert_eq!(serve.get("draining").and_then(tofu_obs::json::Json::as_bool), Some(true));
    let num = |k: &str| serve.get(k).and_then(tofu_obs::json::Json::as_f64).unwrap_or(-1.0);
    assert_eq!(num("shutting_down"), 1.0);
    assert_eq!(num("requests"), 6.0, "the late arrival was never counted as admitted work");
    assert_eq!(num("misses"), 6.0);
    assert_eq!(num("rejected"), 0.0);

    // Completing the drain joins the (now idle) solver pool and closes up.
    server.drain();
}
