//! Discrete-event simulation of a device-tagged dataflow graph.
//!
//! Each GPU executes its nodes serially (one stream, like MXNet's default).
//! A node consuming a tensor produced on another device triggers a transfer
//! occupying the (undirected) link between the two devices; transfers on the
//! same link serialize. `multi_fetch` nodes transfer each remote piece
//! separately — the bytes come from the piece descriptors, so halo exchanges
//! cost only their overlap.

use std::collections::BTreeMap;

use tofu_graph::{Graph, NodeId};
use tofu_obs::{Collector, Track};

use crate::compute::node_seconds;
use crate::machine::Machine;

/// Result of one simulated iteration.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// End-to-end iteration time (seconds).
    pub makespan: f64,
    /// Total busy compute time per device.
    pub compute_busy: Vec<f64>,
    /// Total bytes moved between devices.
    pub comm_bytes: f64,
    /// Total link-occupancy time (seconds, summed over links).
    pub comm_seconds: f64,
}

impl SimResult {
    /// The fraction of the makespan attributable to communication, measured
    /// the way Fig. 10 does: against a hypothetical run with free transfers.
    pub fn comm_overhead_fraction(&self, compute_only_makespan: f64) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        ((self.makespan - compute_only_makespan) / self.makespan).max(0.0)
    }
}

/// Per-node device assignment for the simulation.
pub trait DeviceMap {
    /// Device of a node.
    fn device(&self, node: NodeId) -> usize;
}

impl DeviceMap for Vec<usize> {
    fn device(&self, node: NodeId) -> usize {
        self[node.0]
    }
}

/// Simulates one iteration of `g` under the device assignment.
///
/// `free_transfers` zeroes all communication cost — the methodology Fig. 10
/// uses to separate computation from communication overhead.
pub fn simulate(
    g: &Graph,
    devices: &impl DeviceMap,
    machine: &Machine,
    free_transfers: bool,
) -> SimResult {
    simulate_with_leaf_devices(g, devices, &[], machine, free_transfers)
}

/// [`simulate`] with explicit leaf-tensor placement.
///
/// `leaf_devices` is indexed by `TensorId`; a `Some(d)` entry pins that leaf
/// to device `d` at time zero, overriding the first-consumer heuristic (which
/// remains the fallback for out-of-range or `None` entries). Partitioned
/// graphs pass `ShardedGraph::device_of_tensor` here so that a shard owned by
/// one worker but first read through another worker's `multi_fetch` is not
/// misplaced — misplacement turns the owner's local reads into phantom
/// full-tensor transfers and inflates `comm_bytes`.
pub fn simulate_with_leaf_devices(
    g: &Graph,
    devices: &impl DeviceMap,
    leaf_devices: &[Option<usize>],
    machine: &Machine,
    free_transfers: bool,
) -> SimResult {
    simulate_traced(g, devices, leaf_devices, machine, free_transfers, None)
}

/// [`simulate_with_leaf_devices`] that additionally emits the predicted
/// timeline into `obs`: per-node spans on `Track::sim(device)` (named by node
/// name, mirroring what the runtime records on `Track::runtime(device)` so
/// the two overlay in one trace), per-transfer spans on the sender's
/// `Track::sim_link` lane, and cumulative `link s->d bytes` counters.
/// Simulated seconds map to trace microseconds (1 s = 1e6 µs).
pub fn simulate_traced(
    g: &Graph,
    devices: &impl DeviceMap,
    leaf_devices: &[Option<usize>],
    machine: &Machine,
    free_transfers: bool,
    obs: Option<&Collector>,
) -> SimResult {
    let n = g.num_nodes();
    // Cumulative bytes per directed link, sampled into counters.
    let mut link_sent: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut finish: Vec<f64> = vec![0.0; n];
    let mut device_avail: Vec<f64> = vec![0.0; machine.gpus.max(1)];
    let mut link_avail: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    // Producer device and availability time per tensor.
    let mut tensor_ready: Vec<(usize, f64)> = vec![(usize::MAX, 0.0); g.num_tensors()];
    let mut comm_bytes = 0.0f64;
    let mut comm_seconds = 0.0f64;
    let mut compute_busy = vec![0.0f64; machine.gpus.max(1)];

    // Leaf tensors (inputs/weights) are resident on their consumer's device
    // from time zero; in partitioned graphs each worker owns its shard, so a
    // leaf's device is taken from the first consumer.
    for id in g.node_ids() {
        let node = g.node(id);
        let dev = devices.device(id);
        for &t in &node.inputs {
            if g.producer(t).is_none() && tensor_ready[t.0].0 == usize::MAX {
                let home = leaf_devices.get(t.0).copied().flatten().unwrap_or(dev);
                tensor_ready[t.0] = (home, 0.0);
            }
        }
    }

    for id in g.node_ids() {
        let node = g.node(id);
        let dev = devices.device(id);
        let mut ready = device_avail[dev];
        for &dep in &node.control_deps {
            ready = ready.max(finish[dep.0]);
        }

        // Per-input arrival, with transfers for remote tensors.
        let piece_bytes = multi_fetch_piece_bytes(g, id);
        for (i, &t) in node.inputs.iter().enumerate() {
            let (src, avail) = tensor_ready[t.0];
            let src = if src == usize::MAX { dev } else { src };
            let mut arrive = avail;
            if src != dev && !free_transfers {
                let bytes = match &piece_bytes {
                    Some(pb) => pb.get(i).copied().unwrap_or(0.0),
                    None => g.tensor(t).shape.bytes() as f64,
                };
                if bytes > 0.0 {
                    let key = (src.min(dev), src.max(dev));
                    let bw = machine.link_bw(src, dev);
                    let start = avail.max(*link_avail.get(&key).unwrap_or(&0.0));
                    let dur = bytes / bw;
                    link_avail.insert(key, start + dur);
                    comm_bytes += bytes;
                    comm_seconds += dur;
                    arrive = start + dur;
                    if let Some(c) = obs {
                        let total = link_sent.entry((src, dev)).or_insert(0.0);
                        *total += bytes;
                        let lane = Track::sim_link(src);
                        c.complete(
                            lane,
                            "comm",
                            &format!("xfer {}", g.tensor(t).name),
                            start * 1e6,
                            arrive * 1e6,
                        );
                        c.counter(lane, &format!("link {src}->{dev} bytes"), arrive * 1e6, *total);
                    }
                }
            } else if src != dev {
                comm_bytes += match &piece_bytes {
                    Some(pb) => pb.get(i).copied().unwrap_or(0.0),
                    None => g.tensor(t).shape.bytes() as f64,
                };
            }
            ready = ready.max(arrive);
        }

        let dur = node_seconds(g, id, machine);
        let end = ready + dur;
        finish[id.0] = end;
        device_avail[dev] = end;
        compute_busy[dev] += dur;
        tensor_ready[node.output.0] = (dev, end);
        if let Some(c) = obs {
            let cat = if node.op == "multi_fetch" { "fetch" } else { "op" };
            c.complete(Track::sim(dev), cat, &node.name, ready * 1e6, end * 1e6);
        }
    }

    SimResult {
        makespan: finish.iter().copied().fold(0.0, f64::max),
        compute_busy,
        comm_bytes,
        comm_seconds,
    }
}

/// For a `multi_fetch` node, the bytes read from each input (piece volumes);
/// `None` for ordinary nodes.
fn multi_fetch_piece_bytes(g: &Graph, id: NodeId) -> Option<Vec<f64>> {
    let node = g.node(id);
    if node.op != "multi_fetch" {
        return None;
    }
    let rank = node.attrs.ints("out_dims")?.len();
    let pieces = node.attrs.ints("pieces")?;
    let mut out = Vec::with_capacity(node.inputs.len());
    for i in 0..node.inputs.len() {
        let desc = &pieces[i * 3 * rank..(i + 1) * 3 * rank];
        let len: i64 = desc[2 * rank..].iter().product::<i64>().max(0);
        out.push(len as f64 * 4.0);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_graph::Attrs;
    use tofu_tensor::Shape;

    fn chain_on(devices: Vec<usize>) -> (Graph, Vec<usize>) {
        let mut g = Graph::new();
        let mut t = g.add_input("x", Shape::new(vec![1 << 20]));
        for i in 0..devices.len() {
            t = g.add_op("relu", &format!("r{i}"), &[t], Attrs::new()).unwrap();
        }
        (g, devices)
    }

    #[test]
    fn single_device_serializes() {
        let m = Machine::p2_8xlarge();
        let (g, dev) = chain_on(vec![0, 0, 0]);
        let r = simulate(&g, &dev, &m, false);
        assert!((r.makespan - r.compute_busy[0]).abs() < 1e-12);
        assert_eq!(r.comm_bytes, 0.0);
    }

    #[test]
    fn cross_device_chain_pays_transfers() {
        let m = Machine::p2_8xlarge();
        let (g, dev) = chain_on(vec![0, 1, 0]);
        let with = simulate(&g, &dev, &m, false);
        let free = simulate(&g, &dev, &m, true);
        assert!(with.makespan > free.makespan);
        // Two hops of 4 MiB each.
        assert_eq!(with.comm_bytes, 2.0 * 4.0 * (1 << 20) as f64);
        assert!(with.comm_overhead_fraction(free.makespan) > 0.0);
    }

    #[test]
    fn parallel_branches_overlap() {
        let m = Machine::p2_8xlarge();
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![1 << 22]));
        let _a = g.add_op("relu", "a", &[x], Attrs::new()).unwrap();
        let _b = g.add_op("tanh", "b", &[x], Attrs::new()).unwrap();
        // Same work on one device vs two.
        let serial = simulate(&g, &vec![0, 0], &m, false);
        let parallel = simulate(&g, &vec![0, 1], &m, true);
        assert!(parallel.makespan < serial.makespan * 0.75);
    }

    #[test]
    fn slow_links_cost_more() {
        let m = Machine::p2_8xlarge();
        let (g, _) = chain_on(vec![0, 0]);
        let near = simulate(&g, &vec![0, 1], &m, false);
        let far = simulate(&g, &vec![0, 7], &m, false);
        assert!(far.makespan > near.makespan);
    }

    #[test]
    fn multi_fetch_bytes_come_from_pieces() {
        let m = Machine::p2_8xlarge();
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new(vec![64]));
        let b = g.add_input("b", Shape::new(vec![64]));
        let _pa = g.add_op("relu", "pa", &[a], Attrs::new()).unwrap();
        let _pb = g.add_op("relu", "pb", &[b], Attrs::new()).unwrap();
        let pa = g.tensor_by_name("pa:out").unwrap();
        let pb = g.tensor_by_name("pb:out").unwrap();
        // Fetch 16 elements from pa and 48 from pb.
        let _f = g
            .add_op(
                "multi_fetch",
                "fetch",
                &[pa, pb],
                Attrs::new()
                    .with_ints("out_dims", vec![64])
                    .with_ints("pieces", vec![0, 0, 16, 0, 16, 48]),
            )
            .unwrap();
        // pa on device 1, pb on device 2, fetch on device 0.
        let r = simulate(&g, &vec![1, 2, 0], &m, false);
        assert_eq!(r.comm_bytes, (16.0 + 48.0) * 4.0);
    }
}
