//! Model zoo: the DNN benchmarks of the paper's evaluation (§7.1).
//!
//! Every builder produces a full *training* graph — forward propagation,
//! reverse-mode backward propagation, gradient aggregation and SGD weight
//! updates — exactly the workload Tofu partitions:
//!
//! - [`mlp`]: multi-layer perceptrons (the Fig. 5 example and the validation
//!   workhorse);
//! - [`wresnet`]: Wide ResNet-{50,101,152} with widening factor 4-10 on
//!   ImageNet-sized inputs (Table 2 / Fig. 8);
//! - [`rnn`]: multi-layer LSTM language models with 4K-8K hidden units,
//!   unrolled 20 steps (Table 2 / Fig. 9), built through an `unroll` helper
//!   that tags timesteps and cell positions the way MXNet/PyTorch unrolling
//!   does — which is what Tofu's coarsening detects (§5.1);
//! - [`small_cnn`]: a stride-1 CNN used for numeric validation of
//!   partitioned convolution execution;
//! - [`decoder_block`]: a GPT-style transformer decoder block whose clean
//!   TDL descriptions let the search rediscover megatron-style splits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnn;
pub mod mlp;
pub mod rnn;
pub mod transformer;
pub mod wresnet;

pub use cnn::{small_cnn, SmallCnnConfig};
pub use mlp::{mlp, MlpConfig};
pub use rnn::{rnn, RnnConfig};
pub use transformer::{decoder_block, DecoderConfig};
pub use wresnet::{wresnet, WResNetConfig};

use tofu_graph::{Graph, TensorId};

/// A fully built training graph plus the handles benchmarks need.
#[derive(Debug)]
pub struct BuiltModel {
    /// The training graph (forward + backward + updates).
    pub graph: Graph,
    /// The scalar loss tensor.
    pub loss: TensorId,
    /// All trainable weights.
    pub weights: Vec<TensorId>,
    /// External inputs (mini-batch data and labels).
    pub inputs: Vec<TensorId>,
    /// `(weight, gradient)` pairs.
    pub grads: Vec<(TensorId, TensorId)>,
    /// The model's mini-batch size.
    pub batch: usize,
}

impl BuiltModel {
    /// Bytes of trainable weights (fp32).
    pub fn weight_bytes(&self) -> u64 {
        self.weights.iter().map(|&w| self.graph.tensor(w).shape.bytes()).sum()
    }

    /// Total training-state bytes: weights, gradients and one optimizer
    /// history buffer — the `3W` rule of §7.1 used by Table 2.
    pub fn training_state_bytes(&self) -> u64 {
        3 * self.weight_bytes()
    }

    /// Training-state size in gigabytes (10⁹ bytes, as the paper tabulates).
    pub fn training_state_gb(&self) -> f64 {
        self.training_state_bytes() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_tensor::Shape;

    #[test]
    fn built_model_accounting() {
        let mut g = Graph::new();
        let w = g.add_weight("w", Shape::new(vec![16, 16]));
        let model = BuiltModel {
            graph: g,
            loss: w,
            weights: vec![w],
            inputs: vec![],
            grads: vec![],
            batch: 4,
        };
        assert_eq!(model.weight_bytes(), 1024);
        assert_eq!(model.training_state_bytes(), 3072);
        assert!((model.training_state_gb() - 3.072e-6).abs() < 1e-12);
    }
}
