//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;

use tofu::core::{generate, partition, GenOptions, PartitionOptions};
use tofu::graph::{Executor, TensorKind};
use tofu::models::{mlp, MlpConfig};
use tofu::tdl::{discover_strategies, DescBuilder, InputRequirement, OutputPartition, Reducer};
use tofu::tensor::{Shape, Tensor};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Scatter/gather is an exact round trip for any tiled tensor.
    #[test]
    fn scatter_gather_roundtrip(
        rows_pow in 3u32..6,
        cols_pow in 2u32..5,
        workers in prop::sample::select(vec![2usize, 4, 8]),
        seed in 0u64..1000,
    ) {
        // Every tensor must be splittable `workers` ways along some path of
        // dimensions; a batch smaller than the worker count rightly fails.
        prop_assume!((1usize << rows_pow) >= workers);
        let shape = Shape::new(vec![1 << rows_pow, 1 << cols_pow]);
        let model = mlp(&MlpConfig {
            batch: 1 << rows_pow,
            dims: vec![1 << cols_pow, 1 << cols_pow],
            classes: 4,
            with_updates: false,
        }).unwrap();
        let plan = partition(
            &model.graph,
            &PartitionOptions { workers, ..Default::default() },
        ).unwrap();
        let sharded = generate(&model.graph, &plan, &GenOptions::default()).unwrap();
        let x = model.graph.tensor_by_name("x").unwrap();
        let v = Tensor::random(shape, seed, 1.0);
        let pieces = sharded.scatter(x, &v).unwrap();
        let values: std::collections::BTreeMap<_, _> = pieces.into_iter().collect();
        let back = sharded.gather(x, v.shape(), &values).unwrap();
        prop_assert!(back.allclose(&v, 0.0));
    }

    /// Partition plans split tensors along dimensions that divide evenly.
    #[test]
    fn plans_split_divisible_dimensions(
        batch in prop::sample::select(vec![8usize, 16, 32, 48]),
        hidden in prop::sample::select(vec![16usize, 24, 32, 64]),
        workers in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        let model = mlp(&MlpConfig {
            batch,
            dims: vec![hidden, hidden],
            classes: 8,
            with_updates: true,
        }).unwrap();
        let plan = partition(
            &model.graph,
            &PartitionOptions { workers, ..Default::default() },
        ).unwrap();
        for t in model.graph.tensor_ids() {
            let mut dims = model.graph.tensor(t).shape.dims().to_vec();
            for (step, spec) in plan.tiling[t.0].iter().enumerate() {
                if let Some(d) = spec {
                    let ways = plan.steps[step].ways;
                    prop_assert_eq!(dims[*d] % ways, 0,
                        "tensor {} dim {} extent {} not divisible by {}",
                        model.graph.tensor(t).name, d, dims[*d], ways);
                    dims[*d] /= ways;
                }
            }
        }
    }

    /// Per-step costs are non-decreasing (Theorem 2) for arbitrary MLPs.
    #[test]
    fn deltas_monotone(
        batch in prop::sample::select(vec![16usize, 64, 256]),
        hidden in prop::sample::select(vec![32usize, 128, 512]),
        depth in 1usize..4,
    ) {
        let model = mlp(&MlpConfig {
            batch,
            dims: vec![hidden; depth + 1],
            classes: 16,
            with_updates: true,
        }).unwrap();
        let plan = partition(
            &model.graph,
            &PartitionOptions { workers: 8, ..Default::default() },
        ).unwrap();
        let deltas = plan.step_costs();
        for pair in deltas.windows(2) {
            prop_assert!(pair[0] <= pair[1] * 1.05 + 4096.0, "deltas {:?}", deltas);
        }
    }

    /// Element-wise descriptions of any rank/arity discover exactly one
    /// clean split strategy per dimension.
    #[test]
    fn elementwise_strategies_cover_dimensions(rank in 1usize..5, arity in 1usize..4) {
        let ranks = vec![rank; arity];
        let mut b = DescBuilder::new("ew", &ranks);
        let vars: Vec<_> = (0..rank).map(|d| b.output_var(format!("d{d}"))).collect();
        let coords: Vec<_> = vars.iter().map(|v| v.at()).collect();
        let mut body = b.input(0, &coords);
        for i in 1..arity {
            body = body + b.input(i, &coords);
        }
        let desc = b.build(body).unwrap();
        prop_assert!(desc.is_elementwise());
        let strategies = discover_strategies(&desc).unwrap();
        prop_assert_eq!(strategies.len(), rank);
        for (d, s) in strategies.iter().enumerate() {
            prop_assert_eq!(&s.output, &OutputPartition::Split { dim: d });
            for inp in &s.inputs {
                let clean_split = matches!(inp,
                    InputRequirement::Split { dim, halo } if *dim == d && halo.is_zero());
                prop_assert!(clean_split, "dimension {} requirement {:?}", d, inp);
            }
        }
    }

    /// Matmul-family descriptions always discover the inner-product
    /// reduction strategy regardless of shapes.
    #[test]
    fn matmul_reduction_always_present(m in 1usize..64, n in 1usize..64, k in 1usize..64) {
        let _ = (m, n, k);
        let mut b = DescBuilder::new("matmul", &[2, 2]);
        let (i, j) = (b.output_var("i"), b.output_var("j"));
        let kk = b.reduce_var("k");
        let body = b.input(0, &[i.at(), kk.at()]) * b.input(1, &[kk.at(), j.at()]);
        let desc = b.build_reduce(Reducer::Sum, body).unwrap();
        let s = discover_strategies(&desc).unwrap();
        prop_assert!(s.iter().any(|st| st.output.is_reduce()));
    }
}

/// A plain (non-proptest) sanity case kept alongside: partitioned training
/// loss equals single-device loss on a randomized model.
#[test]
fn randomized_mlp_loss_is_transparent() {
    let model = mlp(&MlpConfig {
        batch: 16,
        dims: vec![32, 48],
        classes: 8,
        with_updates: false,
    })
    .unwrap();
    let plan = partition(
        &model.graph,
        &PartitionOptions { workers: 4, ..Default::default() },
    )
    .unwrap();
    let sharded = generate(&model.graph, &plan, &GenOptions::default()).unwrap();
    let mut base = Executor::new();
    let mut part = Executor::new();
    for t in model.graph.tensor_ids() {
        let meta = model.graph.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            Tensor::from_vec(meta.shape.clone(), (0..16).map(|i| (i % 8) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64, 0.5)
        };
        base.feed(t, v.clone());
        for (shard, piece) in sharded.scatter(t, &v).unwrap() {
            part.feed(shard, piece);
        }
    }
    let base_vals = base.run(&model.graph).unwrap();
    let part_vals = part.run(&sharded.graph).unwrap();
    let got = sharded
        .gather(model.loss, base_vals[&model.loss].shape(), &part_vals)
        .unwrap();
    assert!(got.allclose(&base_vals[&model.loss], 1e-4));
}
