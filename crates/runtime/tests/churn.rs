//! Fleet-churn tests: scripted leave/rejoin sequences must shrink and grow
//! the worker set deterministically, carry progress across every width
//! change through plan-independent snapshots, and finish bit-identical to an
//! undisturbed run at the final width resumed from the same snapshot cut.

use std::collections::BTreeMap;
use std::time::Duration;

use tofu_core::{generate, partition, GenOptions, PartitionOptions, SearchCaches};
use tofu_graph::{Graph, TensorId, TensorKind};
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{
    gather_shards, resume_from_snapshot, run_with_elastic_recovery, run_with_options,
    CheckpointPolicy, ChurnPlan, ElasticPolicy, ElasticReport, FaultPlan, RecoveryOptions,
    RunOptions, RuntimeError, TransitionKind,
};
use tofu_tensor::Tensor;

/// Batch 840 = lcm(1..8): feasible at every width 1..=8.
fn model_840() -> tofu_models::BuiltModel {
    mlp(&MlpConfig { batch: 840, dims: vec![16, 16], classes: 8, with_updates: true }).unwrap()
}

/// Batch 504 = 8·63 = 9·56: feasible at 9 workers, so a fresh device can
/// grow a run beyond its starting width of 8.
fn model_504() -> tofu_models::BuiltModel {
    mlp(&MlpConfig { batch: 504, dims: vec![16, 16], classes: 8, with_updates: true }).unwrap()
}

/// Batch 48: infeasible at 5 and 7 workers — losing one of 8 devices must
/// step down to 6 with a spare, and a rejoin must climb back to 8.
fn model_48() -> tofu_models::BuiltModel {
    mlp(&MlpConfig { batch: 48, dims: vec![16, 16], classes: 8, with_updates: true }).unwrap()
}

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.5)
        };
        out.push((t, v));
    }
    out
}

fn churned(g: &Graph, churn: ChurnPlan) -> RunOptions {
    RunOptions {
        churn,
        checkpoint: Some(CheckpointPolicy::every_original((g.num_nodes() / 6).max(1))),
        ..Default::default()
    }
}

fn elastic(policy: ElasticPolicy) -> RecoveryOptions {
    RecoveryOptions {
        max_attempts: 1,
        backoff: Duration::ZERO,
        elastic: Some(policy),
        ..Default::default()
    }
}

/// The spec's baseline: an undisturbed run at the final width resumed from
/// the same snapshot cut the churned run last crossed.
fn baseline_values(
    report: &ElasticReport,
    full_feeds: &[(TensorId, Tensor)],
) -> BTreeMap<TensorId, Tensor> {
    let clean = RunOptions::default();
    match &report.snapshot {
        Some(snap) => resume_from_snapshot(&report.sharded, &[], &clean, snap)
            .expect("baseline resume")
            .values,
        None => {
            let mut sf = Vec::new();
            for (t, v) in full_feeds {
                sf.extend(report.sharded.scatter(*t, v).unwrap());
            }
            run_with_options(&report.sharded, &sf, &clean).expect("baseline run").values
        }
    }
}

fn assert_bit_identical(got: &BTreeMap<TensorId, Tensor>, want: &BTreeMap<TensorId, Tensor>) {
    assert_eq!(got.keys().collect::<Vec<_>>(), want.keys().collect::<Vec<_>>());
    for (t, w) in want {
        let g = &got[t];
        assert_eq!(g.shape(), w.shape(), "tensor {t:?} changed shape");
        let gb: Vec<u32> = g.data().iter().map(|x| x.to_bits()).collect();
        let wb: Vec<u32> = w.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(gb, wb, "tensor {t:?} is not bit-identical to the baseline");
    }
}

fn kinds(report: &ElasticReport) -> Vec<TransitionKind> {
    report.transitions.iter().map(|t| t.kind).collect()
}

/// Every original tensor of the run, gathered to full shape. Which *piece*
/// (communication) tensors appear in `output.values` depends on the barrier
/// the run resumed from — a timing-dependent harvest — so cross-run
/// comparisons go through the original tensors, which are always complete.
fn gathered_originals(report: &ElasticReport) -> BTreeMap<TensorId, Tensor> {
    let mut out = BTreeMap::new();
    for (&t, shards) in &report.sharded.shards {
        if shards.iter().all(|s| report.output.values.contains_key(s)) {
            out.insert(
                t,
                gather_shards(&report.sharded, t, &report.output.values).expect("gather"),
            );
        }
    }
    out
}

#[test]
fn leave_then_rejoin_shrinks_and_grows_back_bit_identically() {
    let m = model_840();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 8, ..Default::default() };
    let mut caches = SearchCaches::default();
    let churn = ChurnPlan::none().with_leave(3, 40).with_join(3, 1);
    let report = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &churned(&m.graph, churn),
        &elastic(ElasticPolicy::default()),
        &mut caches,
    )
    .expect("leave/rejoin survives");
    assert_eq!(report.widths, vec![8, 7, 8], "shrink then grow back");
    assert_eq!(report.lost, vec![3]);
    assert_eq!(report.joined, vec![3]);
    assert_eq!(report.devices, (0..8).collect::<Vec<_>>(), "device 3 is active again");
    assert!(report.spares.is_empty());
    assert_eq!(kinds(&report), vec![TransitionKind::Shrink, TransitionKind::Grow]);
    let grow = &report.transitions[1];
    assert_eq!((grow.from_width, grow.to_width), (7, 8));
    assert!(grow.at_ckpt.is_some(), "grow happens at a checkpoint barrier");
    assert!(grow.replan.is_some());
    let baseline = baseline_values(&report, &full_feeds);
    assert_bit_identical(&report.output.values, &baseline);
}

#[test]
fn a_fresh_device_grows_the_run_beyond_its_starting_width() {
    let m = model_504();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 8, ..Default::default() };
    let mut caches = SearchCaches::default();
    // Device 8 never existed in the initial fleet: a pure scale-up.
    let churn = ChurnPlan::none().with_join(8, 2);
    let report = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &churned(&m.graph, churn),
        &elastic(ElasticPolicy::default()),
        &mut caches,
    )
    .expect("pure join survives");
    assert_eq!(report.widths, vec![8, 9], "grew past the starting width");
    assert!(report.lost.is_empty());
    assert_eq!(report.joined, vec![8]);
    assert_eq!(report.devices, (0..9).collect::<Vec<_>>());
    assert_eq!(kinds(&report), vec![TransitionKind::Grow]);
    let baseline = baseline_values(&report, &full_feeds);
    assert_bit_identical(&report.output.values, &baseline);
}

#[test]
fn grow_hysteresis_delays_the_pause_barrier() {
    let m = model_504();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 8, ..Default::default() };
    for (hysteresis, want_ckpt) in [(0usize, 2usize), (2, 4)] {
        let mut caches = SearchCaches::default();
        let churn = ChurnPlan::none().with_join(8, 2);
        let report = run_with_elastic_recovery(
            &m.graph,
            &full_feeds,
            &part,
            &churned(&m.graph, churn),
            &elastic(ElasticPolicy { grow_hysteresis: hysteresis, ..Default::default() }),
            &mut caches,
        )
        .expect("join survives");
        assert_eq!(kinds(&report), vec![TransitionKind::Grow]);
        assert_eq!(
            report.transitions[0].at_ckpt,
            Some(want_ckpt),
            "hysteresis {hysteresis} pauses at barrier at_ckpt + hysteresis"
        );
        assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
    }
}

#[test]
fn max_workers_turns_a_join_into_a_spare() {
    let m = model_504();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 8, ..Default::default() };
    let mut caches = SearchCaches::default();
    let churn = ChurnPlan::none().with_join(8, 1);
    let report = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &churned(&m.graph, churn),
        &elastic(ElasticPolicy { max_workers: 8, ..Default::default() }),
        &mut caches,
    )
    .expect("capped join survives");
    assert_eq!(report.widths, vec![8], "the policy cap held the width");
    assert_eq!(report.joined, vec![8]);
    assert_eq!(report.spares, vec![8], "the joiner idles as a spare");
    assert_eq!(kinds(&report), vec![TransitionKind::SpareJoin]);
    // No pause happened, so no snapshot was carried: the run is simply the
    // undisturbed 8-wide run.
    assert!(report.snapshot.is_none());
    assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
}

#[test]
fn infeasible_widths_step_down_to_capacity_and_climb_back_on_rejoin() {
    let m = model_48();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 8, ..Default::default() };
    let mut caches = SearchCaches::default();
    // Batch 48 has no 7-way split: losing one of 8 must step down to 6,
    // idling one survivor as a spare; the rejoin restores 8.
    let churn = ChurnPlan::none().with_leave(2, 30).with_join(2, 1);
    let report = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &churned(&m.graph, churn),
        &elastic(ElasticPolicy::default()),
        &mut caches,
    )
    .expect("step-down churn survives");
    assert_eq!(report.widths, vec![8, 6, 8], "7 is infeasible: capacity 7 runs 6 wide");
    assert_eq!(report.lost, vec![2]);
    assert_eq!(report.joined, vec![2]);
    assert_eq!(kinds(&report), vec![TransitionKind::Shrink, TransitionKind::Grow]);
    assert_eq!(report.transitions[0].to_width, 6);
    assert_eq!(report.transitions[1].to_width, 8);
    assert_eq!(report.devices, (0..8).collect::<Vec<_>>());
    assert!(report.spares.is_empty());
    assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
}

#[test]
fn a_leave_of_an_idle_spare_does_not_disturb_the_run() {
    let m = model_48();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 8, ..Default::default() };
    let mut caches = SearchCaches::default();
    // After losing device 7 the run is 6 wide with device 6 spare; the
    // second leave hits that spare and must not trigger another reshard.
    let churn = ChurnPlan::none().with_leave(7, 30).with_leave(6, 60);
    let report = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &churned(&m.graph, churn),
        &elastic(ElasticPolicy::default()),
        &mut caches,
    )
    .expect("spare loss survives");
    assert_eq!(report.widths, vec![8, 6], "only the active loss changed the width");
    assert_eq!(report.lost, vec![7, 6]);
    assert_eq!(kinds(&report), vec![TransitionKind::Shrink, TransitionKind::SpareLoss]);
    assert_eq!(report.devices, (0..6).collect::<Vec<_>>());
    assert!(report.spares.is_empty());
    assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
}

#[test]
fn seeded_churn_replays_identically_from_one_seed() {
    let m = model_840();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 8, ..Default::default() };
    let plan_a = ChurnPlan::seeded(0xC0FFEE, 4, 8, 100, 4);
    let plan_b = ChurnPlan::seeded(0xC0FFEE, 4, 8, 100, 4);
    assert_eq!(format!("{plan_a:?}"), format!("{plan_b:?}"), "same seed, same script");
    let run = |plan: ChurnPlan| {
        let mut caches = SearchCaches::default();
        run_with_elastic_recovery(
            &m.graph,
            &full_feeds,
            &part,
            &churned(&m.graph, plan),
            &elastic(ElasticPolicy::default()),
            &mut caches,
        )
        .expect("seeded churn survives")
    };
    let a = run(plan_a);
    let b = run(plan_b);
    assert_eq!(a.widths, b.widths);
    assert_eq!(a.lost, b.lost);
    assert_eq!(a.joined, b.joined);
    assert_eq!(kinds(&a), kinds(&b));
    // The scripted events, the width ladder, and the set of lost/joined
    // devices replay identically from the seed. The *bits* of the two runs
    // are comparable only when both harvested the same checkpoint cuts
    // (which barrier a shrink carries is timing-dependent; a different cut
    // moves the width change and reorders the floating-point reductions) —
    // when the cuts agree, the outputs must agree bit for bit. Each run is
    // unconditionally bit-identical to an undisturbed run at its final
    // width resumed from its own snapshot cut.
    let cuts = |r: &ElasticReport| -> Vec<Option<usize>> {
        r.transitions.iter().map(|t| t.at_ckpt).collect()
    };
    if cuts(&a) == cuts(&b) {
        let originals = gathered_originals(&a);
        assert!(!originals.is_empty());
        assert_bit_identical(&originals, &gathered_originals(&b));
    }
    assert_bit_identical(&a.output.values, &baseline_values(&a, &full_feeds));
    assert_bit_identical(&b.output.values, &baseline_values(&b, &full_feeds));
}

#[test]
fn joins_require_a_checkpoint_cadence() {
    let m = model_840();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let mut caches = SearchCaches::default();
    let opts = RunOptions { churn: ChurnPlan::none().with_join(4, 1), ..Default::default() };
    let err = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &opts,
        &elastic(ElasticPolicy::default()),
        &mut caches,
    )
    .unwrap_err();
    assert!(matches!(err, RuntimeError::InvalidOptions(ref m) if m.contains("checkpoint")),
        "got {err}");
}

#[test]
fn churn_requires_an_elastic_policy() {
    let m = model_840();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let mut caches = SearchCaches::default();
    let opts = churned(&m.graph, ChurnPlan::none().with_leave(1, 10));
    let recovery = RecoveryOptions {
        max_attempts: 1,
        backoff: Duration::ZERO,
        elastic: None,
        ..Default::default()
    };
    let err =
        run_with_elastic_recovery(&m.graph, &full_feeds, &part, &opts, &recovery, &mut caches)
            .unwrap_err();
    assert!(matches!(err, RuntimeError::InvalidOptions(ref m) if m.contains("elastic")),
        "got {err}");
}

#[test]
fn plain_runs_reject_churn_plans() {
    let m = model_840();
    let part = PartitionOptions { workers: 2, ..Default::default() };
    let plan = partition(&m.graph, &part).unwrap();
    let sharded = generate(&m.graph, &plan, &GenOptions::default()).unwrap();
    let mut sf = Vec::new();
    for (t, v) in feeds(&m.graph) {
        sf.extend(sharded.scatter(t, &v).unwrap());
    }
    let opts = RunOptions {
        churn: ChurnPlan::none().with_leave(1, 5),
        faults: FaultPlan::none(),
        ..Default::default()
    };
    let err = run_with_options(&sharded, &sf, &opts).unwrap_err();
    assert!(matches!(err, RuntimeError::InvalidOptions(_)), "got {err}");
}
