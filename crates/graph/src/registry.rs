//! The operator registry: one [`OpDef`] per operator name.
//!
//! This plays the role of NNVM's operator registry in the paper's prototype.
//! Each definition bundles shape inference, the TDL description (§4.1), the
//! gradient builder used by autodiff, a flop estimate for the simulator's
//! compute model, and a category used by coarsening and by the §4.1 coverage
//! statistics.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use parking_lot::RwLock;
use tofu_tdl::TdlDesc;
use tofu_tensor::Shape;

use crate::attrs::Attrs;
use crate::graph::{Graph, NodeTags, TensorId};
use crate::Result;

pub use crate::error::GraphError;

/// Broad operator classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpCategory {
    /// One output element depends on the same-coordinate input elements.
    Elementwise,
    /// Dense linear algebra (matrix multiplication family).
    Linalg,
    /// Convolutions and pooling.
    Convolution,
    /// Axis reductions, broadcasts and normalization pieces.
    Reduction,
    /// Loss functions.
    Loss,
    /// Optimizer update rules.
    Optimizer,
    /// Contains an opaque TDL function (e.g. batched Cholesky).
    Opaque,
    /// Data-movement primitives used by partitioned graphs (§6).
    Data,
    /// Sparse-tensor operators — not describable in TDL (§4.1).
    Sparse,
}

/// Shape inference: input shapes + attrs to output shape (or a detail string).
pub type ShapeFn = fn(&[Shape], &Attrs) -> std::result::Result<Shape, String>;

/// TDL description builder; `None` when the operator cannot be described for
/// the given concrete shapes/attrs.
pub type TdlFn = fn(&[Shape], &Attrs) -> Option<TdlDesc>;

/// Flop estimate used by the simulator's compute model.
pub type FlopsFn = fn(&[Shape], &Shape, &Attrs) -> f64;

/// Gradient builder: appends backward nodes through [`GradCtx`] and returns
/// one optional gradient tensor per forward input.
pub type GradFn = fn(&mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>>;

/// Context handed to a [`GradFn`].
pub struct GradCtx<'a> {
    graph: &'a mut Graph,
    /// Forward node inputs.
    pub inputs: Vec<TensorId>,
    /// Forward node output.
    pub output: TensorId,
    /// Gradient of the forward output.
    pub out_grad: TensorId,
    /// Forward node attributes.
    pub attrs: Attrs,
    prefix: String,
    tags: NodeTags,
    counter: usize,
}

impl<'a> GradCtx<'a> {
    /// Creates a context; used by the autodiff pass.
    pub(crate) fn new(
        graph: &'a mut Graph,
        inputs: Vec<TensorId>,
        output: TensorId,
        out_grad: TensorId,
        attrs: Attrs,
        prefix: String,
        tags: NodeTags,
    ) -> GradCtx<'a> {
        GradCtx { graph, inputs, output, out_grad, attrs, prefix, tags, counter: 0 }
    }

    /// Appends a backward node with fresh naming and backward tags.
    pub fn op(&mut self, op: &str, inputs: &[TensorId], attrs: Attrs) -> Result<TensorId> {
        let name = format!("{}/{}_{}", self.prefix, op, self.counter);
        self.counter += 1;
        self.graph.add_op_tagged(op, &name, inputs, attrs, self.tags.clone())
    }

    /// Shape of a tensor in the graph under construction.
    pub fn shape(&self, t: TensorId) -> Shape {
        self.graph.tensor(t).shape.clone()
    }
}

/// A registered operator definition.
#[derive(Clone)]
pub struct OpDef {
    /// Operator name (registry key).
    pub name: &'static str,
    /// Category for coarsening and coverage statistics.
    pub category: OpCategory,
    /// Shape inference.
    pub infer_shape: ShapeFn,
    /// TDL description, when the operator is describable.
    pub tdl: Option<TdlFn>,
    /// Gradient builder, when the operator is differentiable.
    pub gradient: Option<GradFn>,
    /// Flop estimate.
    pub flops: FlopsFn,
}

impl std::fmt::Debug for OpDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpDef")
            .field("name", &self.name)
            .field("category", &self.category)
            .field("describable", &self.tdl.is_some())
            .field("differentiable", &self.gradient.is_some())
            .finish()
    }
}

fn registry() -> &'static RwLock<BTreeMap<&'static str, OpDef>> {
    static REGISTRY: OnceLock<RwLock<BTreeMap<&'static str, OpDef>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = BTreeMap::new();
        for def in crate::ops::builtins() {
            map.insert(def.name, def);
        }
        RwLock::new(map)
    })
}

/// Looks up an operator definition by name.
pub fn lookup(op: &str) -> Result<OpDef> {
    registry()
        .read()
        .get(op)
        .cloned()
        .ok_or_else(|| GraphError::UnknownOp(op.to_string()))
}

/// Registers (or replaces) an operator definition at runtime — the extension
/// point an operator developer would use, mirroring `@tofu.op` in the paper.
pub fn register(def: OpDef) {
    registry().write().insert(def.name, def);
}

/// Returns every registered definition, sorted by name.
pub fn all_ops() -> Vec<OpDef> {
    registry().read().values().cloned().collect()
}

/// Coverage statistics over the registry, reproducing the §4.1 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Total registered operators.
    pub total: usize,
    /// Operators with a TDL description.
    pub describable: usize,
    /// Element-wise operators.
    pub elementwise: usize,
    /// Describable operators using the opaque-function primitive.
    pub opaque: usize,
    /// Describable non-element-wise operators with ≥1 reduction dimension.
    pub with_reduction: usize,
}

/// Computes [`Coverage`] by instantiating each operator's TDL description at
/// a representative shape.
pub fn coverage() -> Coverage {
    let ops = all_ops();
    let mut cov = Coverage {
        total: ops.len(),
        describable: 0,
        elementwise: 0,
        opaque: 0,
        with_reduction: 0,
    };
    for def in &ops {
        if def.tdl.is_some() {
            cov.describable += 1;
        }
        match def.category {
            OpCategory::Elementwise | OpCategory::Optimizer => cov.elementwise += 1,
            OpCategory::Opaque => cov.opaque += 1,
            _ => {}
        }
        if let Some(tdl) = def.tdl {
            if let Some(desc) = probe_desc(def, tdl) {
                if desc.reduce_vars().next().is_some() && !desc.is_elementwise() {
                    cov.with_reduction += 1;
                }
            }
        }
    }
    cov
}

/// Instantiates an operator's TDL description at a small representative shape
/// so that rank-generic descriptions can be inspected.
pub fn probe_desc(def: &OpDef, tdl: TdlFn) -> Option<TdlDesc> {
    // Try a few generic shape sets; each op accepts at least one.
    let candidates: Vec<Vec<Shape>> = vec![
        vec![Shape::new(vec![4, 4]); 4],
        vec![Shape::new(vec![4, 4]); 2],
        vec![Shape::new(vec![4, 4]); 1],
        vec![Shape::new(vec![2, 4, 8]), Shape::new(vec![4, 4, 3])],
        vec![Shape::new(vec![2, 4, 8, 8]), Shape::new(vec![4, 4, 3, 3])],
        vec![Shape::new(vec![2, 4, 8, 8])],
        vec![Shape::new(vec![2, 4, 4])],
        vec![Shape::new(vec![4, 4]), Shape::new(vec![4]), Shape::new(vec![4])],
        vec![Shape::new(vec![4, 4]), Shape::new(vec![4])],
        vec![Shape::new(vec![4, 4]), Shape::new(vec![4, 4]), Shape::new(vec![4, 4]), Shape::new(vec![4, 4])],
    ];
    for shapes in candidates {
        if (def.infer_shape)(&shapes, &Attrs::new()).is_ok() {
            if let Some(desc) = tdl(&shapes, &Attrs::new()) {
                return Some(desc);
            }
        }
    }
    // Fall back to calling the TDL builder directly with a plausible shape.
    tdl(&[Shape::new(vec![4, 4]), Shape::new(vec![4, 4])], &Attrs::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_and_unknown() {
        assert!(lookup("matmul").is_ok());
        assert!(lookup("definitely_not_an_op").is_err());
    }

    #[test]
    fn registry_is_well_populated() {
        let ops = all_ops();
        assert!(ops.len() >= 100, "registry has {} ops", ops.len());
        // Sorted by name.
        for pair in ops.windows(2) {
            assert!(pair[0].name <= pair[1].name);
        }
    }

    #[test]
    fn coverage_mirrors_paper_structure() {
        let cov = coverage();
        // The paper's MXNet v0.11 numbers: 139 total, 134 describable, 77
        // element-wise, 2 opaque, 11 with output reductions. Our registry is
        // calibrated to the same structure.
        assert!(cov.total >= 100);
        assert!(cov.describable >= cov.total - 10);
        assert!(cov.elementwise >= 60, "elementwise {}", cov.elementwise);
        assert_eq!(cov.opaque, 2);
        assert!(cov.with_reduction >= 11, "with_reduction {}", cov.with_reduction);
    }

    #[test]
    fn custom_registration_is_visible() {
        fn shape(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
            Ok(ins[0].clone())
        }
        fn flops(_: &[Shape], out: &Shape, _: &Attrs) -> f64 {
            out.volume() as f64
        }
        register(OpDef {
            name: "test_custom_op",
            category: OpCategory::Elementwise,
            infer_shape: shape,
            tdl: None,
            gradient: None,
            flops,
        });
        assert!(lookup("test_custom_op").is_ok());
    }
}
