//! Tensor partition specs and the communication cost model (§5 "minimize the
//! total communication cost").
//!
//! Costs are *bytes moved between the two (or `ways`) worker groups of one
//! basic partition step*, following Lemma 1 of the paper's appendix: every
//! cost is a weighted sum of tensor sizes.

use tofu_tensor::Shape;

/// How one tensor is partitioned at one basic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TensorSpec {
    /// Split in `ways` equal parts along this dimension.
    Split(usize),
    /// Fully replicated on every worker group. Only chosen when no dimension
    /// is divisible (scalars, odd extents) — the paper's algorithm partitions
    /// every tensor, and so does ours whenever possible.
    Replicated,
}

impl TensorSpec {
    /// The split dimension, if any.
    pub fn dim(self) -> Option<usize> {
        match self {
            TensorSpec::Split(d) => Some(d),
            TensorSpec::Replicated => None,
        }
    }

    /// Canonical single-byte encoding: `Split(d)` → `d`, `Replicated` → 255.
    ///
    /// The byte ordering matches the derived `Ord` (ascending split
    /// dimensions, replication last), which the DP relies on for
    /// deterministic state ordering. Panics for split dimensions ≥ 255,
    /// which no realistic tensor rank reaches.
    pub fn enc(self) -> u8 {
        match self {
            TensorSpec::Split(d) => {
                assert!(d < usize::from(u8::MAX), "split dimension {d} out of encoding range");
                d as u8
            }
            TensorSpec::Replicated => u8::MAX,
        }
    }

    /// Inverse of [`TensorSpec::enc`].
    pub fn dec(byte: u8) -> TensorSpec {
        if byte == u8::MAX {
            TensorSpec::Replicated
        } else {
            TensorSpec::Split(byte as usize)
        }
    }
}

/// Enumerates the legal specs of a tensor for a `ways`-way step: every
/// dimension whose *current* extent divides evenly, or replication when none
/// does (and always for scalars).
pub fn legal_specs(shape: &Shape, ways: usize) -> Vec<TensorSpec> {
    let mut specs: Vec<TensorSpec> = (0..shape.rank())
        .filter(|&d| shape.dim(d).is_multiple_of(ways) && shape.dim(d) >= ways)
        .map(TensorSpec::Split)
        .collect();
    if specs.is_empty() {
        specs.push(TensorSpec::Replicated);
    }
    specs
}

/// A concrete (evaluated) input requirement of a chosen strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcreteReq {
    /// The input is not read.
    Unused,
    /// Both worker groups read the whole input.
    Replicated,
    /// Split along `dim` with `halo` extra elements of overlap along it.
    Split {
        /// The input tensor's split dimension.
        dim: usize,
        /// Halo elements along `dim` (0 for clean splits).
        halo: f64,
    },
}

/// A concrete output disposition of a chosen strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConcreteOut {
    /// Workers produce disjoint output blocks along this dimension.
    Split(usize),
    /// Workers produce full-shape partials that must be reduced.
    Reduce,
}

/// Bytes transferred to satisfy one input of one operator at one step.
///
/// `shape` is the input tensor's shape *at this step* (already scaled by
/// earlier steps); `spec` is how the plan splits it at this step; `req` is
/// what the chosen strategy needs; `ways` is the step's group count.
pub fn input_fetch_bytes(shape: &Shape, spec: TensorSpec, req: &ConcreteReq, ways: usize) -> f64 {
    let size = shape.bytes() as f64;
    let w = ways as f64;
    match (spec, req) {
        (_, ConcreteReq::Unused) => 0.0,
        // A replicated tensor is locally available in full: nothing to move.
        (TensorSpec::Replicated, _) => 0.0,
        // Each group gathers the remaining (ways-1)/ways of the tensor.
        (TensorSpec::Split(_), ConcreteReq::Replicated) => size * (w - 1.0),
        (TensorSpec::Split(a), ConcreteReq::Split { dim, halo }) => {
            if a == *dim {
                if *halo <= 0.0 {
                    0.0
                } else {
                    // Each group fetches a halo slab from its neighbor(s).
                    let extent = shape.dim(a).max(1) as f64;
                    let frac = (halo / extent).min(1.0);
                    (size * frac) * w
                }
            } else {
                // Cross-split: every group already owns a 1/ways² block of
                // what it needs and fetches the rest.
                size * (w - 1.0) / w
            }
        }
    }
}

/// Bytes transferred to materialize one output at one step.
///
/// A Case-1 (split) output lands exactly where it is computed; a Case-2
/// (reduce) output costs a spread all-reduce over the full output size.
pub fn output_bytes(shape: &Shape, out: ConcreteOut, ways: usize) -> f64 {
    match out {
        ConcreteOut::Split(_) => 0.0,
        ConcreteOut::Reduce => shape.bytes() as f64 * (ways as f64 - 1.0),
    }
}

/// Bytes to convert a tensor from one spec to another outside any operator
/// (used when a replicated output must be re-sharded, and by baselines).
pub fn respec_bytes(shape: &Shape, from: TensorSpec, to: TensorSpec, ways: usize) -> f64 {
    let size = shape.bytes() as f64;
    let w = ways as f64;
    match (from, to) {
        (a, b) if a == b => 0.0,
        (TensorSpec::Replicated, _) => 0.0,
        (TensorSpec::Split(_), TensorSpec::Replicated) => size * (w - 1.0),
        (TensorSpec::Split(_), TensorSpec::Split(_)) => size * (w - 1.0) / w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec())
    }

    #[test]
    fn legal_specs_respect_divisibility() {
        let s = shape(&[8, 6, 5]);
        assert_eq!(
            legal_specs(&s, 2),
            vec![TensorSpec::Split(0), TensorSpec::Split(1)]
        );
        assert_eq!(legal_specs(&s, 4), vec![TensorSpec::Split(0)]);
        // Nothing divisible by 7 -> replication fallback.
        assert_eq!(legal_specs(&s, 7), vec![TensorSpec::Replicated]);
        // Scalars always replicate.
        assert_eq!(legal_specs(&Shape::scalar(), 2), vec![TensorSpec::Replicated]);
    }

    #[test]
    fn matching_split_is_free() {
        let s = shape(&[8, 8]);
        let req = ConcreteReq::Split { dim: 0, halo: 0.0 };
        assert_eq!(input_fetch_bytes(&s, TensorSpec::Split(0), &req, 2), 0.0);
    }

    #[test]
    fn mismatched_split_costs_half_for_two_ways() {
        let s = shape(&[8, 8]); // 256 bytes
        let req = ConcreteReq::Split { dim: 1, halo: 0.0 };
        assert_eq!(input_fetch_bytes(&s, TensorSpec::Split(0), &req, 2), 128.0);
        // Four ways: 3/4 of the tensor moves.
        assert_eq!(input_fetch_bytes(&s, TensorSpec::Split(0), &req, 4), 192.0);
    }

    #[test]
    fn replication_requirement_costs_remainder() {
        let s = shape(&[8, 8]);
        assert_eq!(
            input_fetch_bytes(&s, TensorSpec::Split(0), &ConcreteReq::Replicated, 2),
            256.0
        );
        // Already replicated tensors are free.
        assert_eq!(
            input_fetch_bytes(&s, TensorSpec::Replicated, &ConcreteReq::Replicated, 2),
            0.0
        );
    }

    #[test]
    fn halo_costs_scale_with_overlap() {
        let s = shape(&[4, 16]); // 256 bytes; dim 1 extent 16
        let req = ConcreteReq::Split { dim: 1, halo: 2.0 };
        // Each of 2 groups fetches 2/16 of the tensor: 2 * 32 = 64 bytes.
        assert_eq!(input_fetch_bytes(&s, TensorSpec::Split(1), &req, 2), 64.0);
        // Zero halo -> free.
        let req0 = ConcreteReq::Split { dim: 1, halo: 0.0 };
        assert_eq!(input_fetch_bytes(&s, TensorSpec::Split(1), &req0, 2), 0.0);
    }

    #[test]
    fn unused_inputs_are_free() {
        let s = shape(&[1024]);
        assert_eq!(input_fetch_bytes(&s, TensorSpec::Split(0), &ConcreteReq::Unused, 2), 0.0);
    }

    #[test]
    fn reduce_output_costs_one_tensor_per_extra_way() {
        let s = shape(&[8, 8]);
        assert_eq!(output_bytes(&s, ConcreteOut::Reduce, 2), 256.0);
        assert_eq!(output_bytes(&s, ConcreteOut::Reduce, 4), 768.0);
        assert_eq!(output_bytes(&s, ConcreteOut::Split(0), 2), 0.0);
    }

    #[test]
    fn respec_costs() {
        let s = shape(&[8, 8]);
        assert_eq!(respec_bytes(&s, TensorSpec::Split(0), TensorSpec::Split(0), 2), 0.0);
        assert_eq!(respec_bytes(&s, TensorSpec::Split(0), TensorSpec::Split(1), 2), 128.0);
        assert_eq!(respec_bytes(&s, TensorSpec::Split(0), TensorSpec::Replicated, 2), 256.0);
        assert_eq!(respec_bytes(&s, TensorSpec::Replicated, TensorSpec::Split(0), 2), 0.0);
    }
}
