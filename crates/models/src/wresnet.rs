//! Wide ResNet training graphs (§7.1, Table 2, Fig. 8, Fig. 11).
//!
//! WResNet widens every residual-block convolution of the original ResNet by
//! a scalar `W`, so the model size grows quadratically in `W`
//! ("WResNet-101-8" = 101 layers widened 8×). The ImageNet-scale spatial
//! pipeline is preserved: 224×224 inputs, a 7×7 stem, four stages of
//! bottleneck blocks at 56/28/14/7 pixels, global average pooling and a
//! 1000-way classifier.

use tofu_graph::{autodiff, Attrs, Graph, NodeTags, TensorId};
use tofu_tensor::Shape;

use crate::BuiltModel;

/// Configuration of a WResNet.
#[derive(Debug, Clone, Copy)]
pub struct WResNetConfig {
    /// Total convolution layers: 50, 101 or 152.
    pub layers: usize,
    /// Widening scalar `W` (the paper evaluates 4, 6, 8, 10).
    pub width: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Input image side (224 for ImageNet, smaller for validation tests).
    pub image: usize,
    /// Classifier classes (1000 for ImageNet).
    pub classes: usize,
    /// Add SGD updates.
    pub with_updates: bool,
}

impl WResNetConfig {
    /// The paper's notation, e.g. `WResNet-152-10`.
    pub fn name(&self) -> String {
        format!("WResNet-{}-{}", self.layers, self.width)
    }

    /// Bottleneck-block counts per stage for the standard depths.
    pub fn stage_blocks(&self) -> Option<[usize; 4]> {
        match self.layers {
            50 => Some([3, 4, 6, 3]),
            101 => Some([3, 4, 23, 3]),
            152 => Some([3, 8, 36, 3]),
            _ => None,
        }
    }
}

impl Default for WResNetConfig {
    fn default() -> Self {
        WResNetConfig {
            layers: 50,
            width: 4,
            batch: 32,
            image: 224,
            classes: 1000,
            with_updates: true,
        }
    }
}

struct Builder<'a> {
    g: &'a mut Graph,
    weights: Vec<TensorId>,
    layer: usize,
}

impl Builder<'_> {
    fn tags(&self) -> NodeTags {
        NodeTags { layer: Some(self.layer), ..NodeTags::default() }
    }

    // A convolution is naturally parameterized by exactly these seven values.
    #[allow(clippy::too_many_arguments)]
    fn conv(
        &mut self,
        name: &str,
        x: TensorId,
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> tofu_graph::Result<TensorId> {
        let w = self.g.add_weight(&format!("{name}/w"), Shape::new(vec![cin, cout, k, k]));
        self.weights.push(w);
        self.g.add_op_tagged(
            "conv2d",
            name,
            &[x, w],
            Attrs::new().with_int("stride", stride as i64).with_int("pad", pad as i64),
            self.tags(),
        )
    }

    /// Batch-norm stand-in: per-channel scale and shift (the learnable part
    /// of BN; statistics do not affect partitioning structure).
    fn norm(&mut self, name: &str, x: TensorId, channels: usize) -> tofu_graph::Result<TensorId> {
        let gamma = self.g.add_weight(&format!("{name}/gamma"), Shape::new(vec![channels]));
        let beta = self.g.add_weight(&format!("{name}/beta"), Shape::new(vec![channels]));
        self.weights.push(gamma);
        self.weights.push(beta);
        self.g.add_op_tagged(
            "scale_shift",
            name,
            &[x, gamma, beta],
            Attrs::new().with_int("axis", 1),
            self.tags(),
        )
    }

    fn relu(&mut self, name: &str, x: TensorId) -> tofu_graph::Result<TensorId> {
        self.g.add_op_tagged("relu", name, &[x], Attrs::new(), self.tags())
    }
}

/// Builds a WResNet training graph.
///
/// # Errors
///
/// Fails when `layers` is not one of 50/101/152 or a shape is inconsistent.
pub fn wresnet(cfg: &WResNetConfig) -> tofu_graph::Result<BuiltModel> {
    let stages = cfg.stage_blocks().ok_or_else(|| {
        tofu_graph::GraphError::Autodiff(format!("unsupported depth {}", cfg.layers))
    })?;
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new(vec![cfg.batch, 3, cfg.image, cfg.image]));
    let labels = g.add_input("labels", Shape::new(vec![cfg.batch]));
    let mut b = Builder { g: &mut g, weights: Vec::new(), layer: 0 };

    // Stem: 7x7/64W stride 2 + 3x3 max pool stride 2 (when the image is big
    // enough; validation-scale images skip the pool).
    let stem_c = 64 * cfg.width; // W x the vanilla 64-channel stem.
    let mut t = b.conv("stem", x, 3, stem_c, 7, 2, 3)?;
    t = b.norm("stem/bn", t, stem_c)?;
    t = b.relu("stem/relu", t)?;
    if cfg.image >= 64 {
        t = b.g.add_op_tagged(
            "pool2d",
            "stem/pool",
            &[t],
            Attrs::new().with_int("window", 2).with_int("stride", 2),
            NodeTags::default(),
        )?;
    }

    // Four bottleneck stages.
    let mut cin = stem_c;
    for (s, &blocks) in stages.iter().enumerate() {
        let internal = 64 * (1 << s) * cfg.width; // W x vanilla 64/128/256/512.
        let cout = 4 * internal;
        for blk in 0..blocks {
            b.layer += 1;
            let stride = if s > 0 && blk == 0 { 2 } else { 1 };
            let name = format!("s{s}b{blk}");
            let c1 = b.conv(&format!("{name}/c1"), t, cin, internal, 1, 1, 0)?;
            let n1 = b.norm(&format!("{name}/n1"), c1, internal)?;
            let r1 = b.relu(&format!("{name}/r1"), n1)?;
            let c2 = b.conv(&format!("{name}/c2"), r1, internal, internal, 3, stride, 1)?;
            let n2 = b.norm(&format!("{name}/n2"), c2, internal)?;
            let r2 = b.relu(&format!("{name}/r2"), n2)?;
            let c3 = b.conv(&format!("{name}/c3"), r2, internal, cout, 1, 1, 0)?;
            let n3 = b.norm(&format!("{name}/n3"), c3, cout)?;
            let skip = if cin != cout || stride != 1 {
                b.conv(&format!("{name}/proj"), t, cin, cout, 1, stride, 0)?
            } else {
                t
            };
            let sum = b.g.add_op_tagged(
                "add",
                &format!("{name}/add"),
                &[n3, skip],
                Attrs::new(),
                NodeTags { layer: Some(b.layer), ..NodeTags::default() },
            )?;
            t = b.relu(&format!("{name}/out"), sum)?;
            cin = cout;
        }
    }

    // Head: global average pool + classifier.
    let pooled = b.g.add_op_tagged("global_avg_pool", "gap", &[t], Attrs::new(), NodeTags::default())?;
    let wfc = b.g.add_weight("fc/w", Shape::new(vec![cin, cfg.classes]));
    b.weights.push(wfc);
    let logits = b.g.add_op("matmul", "fc", &[pooled, wfc], Attrs::new())?;
    let loss = b.g.add_op("softmax_ce", "loss", &[logits, labels], Attrs::new())?;
    let weights = b.weights;

    let info = autodiff::backward(&mut g, loss, &weights)?;
    let grads: Vec<_> =
        weights.iter().filter_map(|&w| info.grad(w).map(|gw| (w, gw))).collect();
    if cfg.with_updates {
        for (i, &(w, gw)) in grads.iter().enumerate() {
            g.add_op("sgd_update", &format!("upd{i}"), &[w, gw], Attrs::new().with_float("lr", 0.01))?;
        }
    }
    Ok(BuiltModel { graph: g, loss, weights, inputs: vec![x, labels], grads, batch: cfg.batch })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depths_have_correct_block_counts() {
        assert_eq!(
            WResNetConfig { layers: 152, ..Default::default() }.stage_blocks(),
            Some([3, 8, 36, 3])
        );
        assert_eq!(
            WResNetConfig { layers: 101, ..Default::default() }.stage_blocks(),
            Some([3, 4, 23, 3])
        );
        assert!(WResNetConfig { layers: 42, ..Default::default() }.stage_blocks().is_none());
        assert!(wresnet(&WResNetConfig { layers: 42, ..Default::default() }).is_err());
    }

    #[test]
    fn wresnet50_4_builds_with_imagenet_shapes() {
        let cfg = WResNetConfig { batch: 2, with_updates: false, ..Default::default() };
        let m = wresnet(&cfg).unwrap();
        // 16 bottleneck blocks + stem -> thousands of nodes with backward.
        assert!(m.graph.num_nodes() > 300, "{} nodes", m.graph.num_nodes());
        // Final feature map is 7x7 at 2048W/4 channels.
        let gap_in = m.graph.tensor_by_name("s3b2/out:out").unwrap();
        assert_eq!(m.graph.tensor(gap_in).shape.dims(), &[2, 8192, 7, 7]);
    }

    #[test]
    fn weight_size_grows_quadratically_in_width() {
        let w4 = wresnet(&WResNetConfig { batch: 1, width: 4, with_updates: false, ..Default::default() })
            .unwrap()
            .weight_bytes() as f64;
        let w8 = wresnet(&WResNetConfig { batch: 1, width: 8, with_updates: false, ..Default::default() })
            .unwrap()
            .weight_bytes() as f64;
        let ratio = w8 / w4;
        assert!((3.5..4.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn table2_scale_is_reproduced() {
        // Table 2: WResNet-50-4 training state is 4.2 GB; our builder should
        // land in the same ballpark (±25%).
        let m = wresnet(&WResNetConfig {
            layers: 50,
            width: 4,
            batch: 1,
            with_updates: false,
            ..Default::default()
        })
        .unwrap();
        let gb = m.training_state_gb();
        assert!((3.1..5.5).contains(&gb), "WResNet-50-4 state = {gb} GB");
    }

    #[test]
    fn name_matches_paper_notation() {
        let cfg = WResNetConfig { layers: 101, width: 8, ..Default::default() };
        assert_eq!(cfg.name(), "WResNet-101-8");
    }

    #[test]
    fn small_image_variant_builds_for_tests() {
        let cfg = WResNetConfig {
            layers: 50,
            width: 4,
            batch: 2,
            image: 32,
            classes: 10,
            with_updates: false,
        };
        let m = wresnet(&cfg).unwrap();
        assert!(m.graph.num_nodes() > 100);
    }
}
