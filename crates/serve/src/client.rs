//! A small synchronous client for the plan service.
//!
//! One [`PlanClient`] wraps one TCP connection and issues one request at a
//! time (send frame, read frame); correlation ids are still checked so a
//! protocol bug surfaces as an error rather than a mismatched answer.

use std::net::{TcpStream, ToSocketAddrs};

use tofu_core::recursive::PartitionOptions;
use tofu_graph::Graph;
use tofu_obs::json::Json;

use crate::protocol::{
    encode_partition, read_frame, write_frame, ErrorCode, ProtocolError, Request, Response,
    DEFAULT_MAX_FRAME,
};

/// A served plan answer.
#[derive(Debug, Clone)]
pub struct ServedPlan {
    /// True when answered from the server's response cache.
    pub cached: bool,
    /// The request fingerprint (hex).
    pub fingerprint: String,
    /// The canonical plan JSON (see [`crate::protocol::plan_to_json`]).
    pub plan: Json,
}

/// Client-side failure: either a transport/protocol error or a typed
/// error response from the server.
#[derive(Debug)]
pub enum ClientError {
    /// Frame or message-layer failure.
    Protocol(ProtocolError),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered something unexpected for this request.
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{}]: {message}", code.as_str())
            }
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// A blocking connection to a [`crate::server::PlanServer`].
///
/// # Examples
///
/// ```no_run
/// use tofu_core::recursive::PartitionOptions;
/// use tofu_serve::client::PlanClient;
/// # let graph = tofu_graph::Graph::new();
///
/// let mut client = PlanClient::connect("127.0.0.1:7070").unwrap();
/// let opts = PartitionOptions { workers: 8, ..Default::default() };
/// let plan = client.partition("tenant-a", &graph, &opts, None).unwrap();
/// println!("cached: {} fp: {}", plan.cached, plan.fingerprint);
/// ```
pub struct PlanClient {
    stream: TcpStream,
    max_frame: usize,
    next_id: u64,
}

impl PlanClient {
    /// Connects to a plan server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<PlanClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(PlanClient { stream, max_frame: DEFAULT_MAX_FRAME, next_id: 1 })
    }

    /// The underlying stream (tests use this to inject raw frames).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.round_trip_bytes(&req.to_bytes())
    }

    fn round_trip_bytes(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, payload)?;
        let payload = read_frame(&mut self.stream, self.max_frame)?
            .ok_or(ProtocolError::Truncated { want: 0 })?;
        Ok(Response::from_bytes(&payload)?)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Requests a partition plan. `deadline_ms` is a relative deadline the
    /// server enforces; expired requests come back as
    /// [`ErrorCode::DeadlineMissed`].
    pub fn partition(
        &mut self,
        tenant: &str,
        graph: &Graph,
        options: &PartitionOptions,
        deadline_ms: Option<u64>,
    ) -> Result<ServedPlan, ClientError> {
        let id = self.fresh_id();
        // Encode from borrowed parts: no Graph clone per request.
        let payload = encode_partition(id, tenant, graph, options, deadline_ms);
        match self.round_trip_bytes(&payload)? {
            Response::Plan { id: rid, cached, fingerprint, plan } if rid == id => {
                Ok(ServedPlan { cached, fingerprint, plan })
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the server's statistics document.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        match self.round_trip(&Request::Stats { id })? {
            Response::Stats { id: rid, body } if rid == id => Ok(body),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Liveness probe; errors if the server does not answer pong.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        match self.round_trip(&Request::Ping { id })? {
            Response::Pong { id: rid } if rid == id => Ok(()),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}
