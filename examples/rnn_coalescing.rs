//! Coarsening on an unrolled RNN (§5.1): timestep coalescing collapses the
//! 20-step LSTM training graph into a small chain of coalesced operator
//! groups, which is what makes the DP search fast (Table 1).
//!
//! Run with: `cargo run --release --example rnn_coalescing`

use tofu::core::{coarsen, partition, PartitionOptions};
use tofu::models::{rnn, RnnConfig};

fn main() {
    let cfg = RnnConfig {
        layers: 4,
        hidden: 1024,
        batch: 128,
        steps: 20,
        embed: 512,
        vocab: 2048,
        with_updates: true,
    };
    let model = rnn(&cfg).expect("model builds");
    let g = &model.graph;

    let cg = coarsen(g);
    println!(
        "unrolled RNN ({} layers x {} steps): {} operators",
        cfg.layers,
        cfg.steps,
        g.num_nodes()
    );
    println!(
        "after coarsening: {} groups ({}x fewer) — the \"chain of coalesced and\n\
         grouped operators\" of §5.1",
        cg.num_groups(),
        g.num_nodes() / cg.num_groups().max(1)
    );

    // Largest coalesced classes: cell positions merged across 20 timesteps.
    let mut sizes: Vec<(usize, usize)> = cg
        .class_nodes
        .iter()
        .enumerate()
        .map(|(ci, members)| (ci, members.len()))
        .collect();
    sizes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\nlargest strategy classes (shared partition choice):");
    for &(ci, n) in sizes.iter().take(6) {
        let rep = cg.class_nodes[ci][0];
        let node = g.node(rep);
        println!(
            "  {:>3} members  op {:<12} (e.g. {}, cell position {:?})",
            n,
            node.op,
            node.name,
            node.tags.cell_position.as_deref().unwrap_or("-")
        );
    }

    // And the search that the coalescing enables.
    let plan = partition(g, &PartitionOptions { workers: 8, ..Default::default() })
        .expect("partition succeeds");
    println!(
        "\n8-worker plan found in {:?}; communication {:.2} GB/iteration",
        plan.search_time,
        plan.total_comm_bytes() / 1e9
    );
    let wx = g.tensor_by_name("l0/wx").expect("weight exists");
    println!(
        "layer-0 W_x tiling across the three steps: {:?} (all timesteps share it)",
        plan.tiling[wx.0]
    );
}
