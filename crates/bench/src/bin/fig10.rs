//! Fig. 10: quality of the partition algorithms — per-batch execution time
//! split into computation and communication, for RNN-4-8K (batch 512) and
//! WResNet-152-10 (batch 8) on 8 simulated GPUs.

use tofu_bench::{bench_report, paper_json, write_report, Json};
use tofu_core::baselines::{run, Algorithm};
use tofu_models::{rnn, wresnet, RnnConfig, WResNetConfig};
use tofu_sim::{run_partitioned, Machine, Outcome, TofuSimOptions};

/// Paper Fig. 10 per-batch times in seconds; `None` = OOM.
const PAPER_RNN: [Option<f64>; 5] = [Some(24.5), Some(21.1), Some(13.8), Some(13.2), Some(6.4)];
const PAPER_WRESNET: [Option<f64>; 5] = [None, Some(33.8), Some(35.2), None, Some(21.9)];

fn main() {
    let machine = Machine::p2_8xlarge();

    let rnn_model = rnn(&RnnConfig {
        layers: 4,
        hidden: 8192,
        batch: 512,
        steps: 20,
        embed: 1024,
        vocab: 4096,
        with_updates: true,
    })
    .expect("rnn builds");
    let wres_model = wresnet(&WResNetConfig {
        layers: 152,
        width: 10,
        batch: 8,
        ..Default::default()
    })
    .expect("wresnet builds");

    let mut results: Vec<Json> = Vec::new();
    for (name, model, batch, paper) in [
        ("RNN-4-8K (batch 512)", &rnn_model, 512usize, &PAPER_RNN),
        ("WResNet-152-10 (batch 8)", &wres_model, 8, &PAPER_WRESNET),
    ] {
        println!("\nFig. 10: {name} — running time per batch (s)");
        println!(
            "{:<14} {:>10} {:>10} {:>8} {:>10}",
            "algorithm", "total (s)", "comm (%)", "paper(s)", "comm GB"
        );
        println!("{}", "-".repeat(58));
        for (ai, alg) in Algorithm::all().into_iter().enumerate() {
            let mut row = vec![
                ("workload", Json::from(name)),
                ("algorithm", Json::from(alg.label())),
                ("paper_seconds", paper_json(paper[ai])),
            ];
            let line = match run(&model.graph, alg, machine.gpus) {
                Ok(plan) => {
                    match run_partitioned(
                        &model.graph,
                        &plan,
                        batch,
                        &machine,
                        &TofuSimOptions::default(),
                    ) {
                        Ok(result) => match result.outcome {
                            Outcome::Ran(p) => {
                                row.push(("iter_seconds", Json::from(p.iter_seconds)));
                                row.push(("comm_fraction", Json::from(p.comm_fraction)));
                                row.push(("comm_gb", Json::from(result.comm_bytes / 1e9)));
                                format!(
                                    "{:<14} {:>10.2} {:>9.0}% {:>8} {:>10.2}",
                                    alg.label(),
                                    p.iter_seconds,
                                    p.comm_fraction * 100.0,
                                    paper[ai]
                                        .map(|v| format!("{v:.1}"))
                                        .unwrap_or_else(|| "OOM".into()),
                                    result.comm_bytes / 1e9,
                                )
                            }
                            Outcome::Oom { peak_gb } => {
                                row.push(("oom_peak_gb", Json::from(peak_gb)));
                                format!(
                                    "{:<14} {:>10} {:>10} {:>8} (needs {peak_gb:.1} GB/GPU)",
                                    alg.label(),
                                    "OOM",
                                    "-",
                                    paper[ai]
                                        .map(|v| format!("{v:.1}"))
                                        .unwrap_or_else(|| "OOM".into()),
                                )
                            }
                        },
                        Err(e) => {
                            row.push(("error", Json::from(format!("generation failed: {e}"))));
                            format!("{:<14} generation failed: {e}", alg.label())
                        }
                    }
                }
                Err(e) => {
                    row.push(("error", Json::from(format!("search failed: {e}"))));
                    format!("{:<14} search failed: {e}", alg.label())
                }
            };
            println!("{line}");
            results.push(Json::obj(row));
        }
    }
    write_report("BENCH_fig10.json", &bench_report("fig10", vec![], results));
    println!(
        "\nShape checks: Tofu has the lowest per-batch time on both workloads;\n\
         AllRow-Greedy and ICML18 should OOM (or come closest to it) on\n\
         WResNet-152-10 — the first fetches too much, the second lacks\n\
         output-reduction for the weight gradients (§7.3)."
    );
}
