//! Brute-force optimality oracle for the basic-step DP search.
//!
//! For small random graphs (≤8 operator nodes) the oracle enumerates *every*
//! bundle-spec assignment directly from the public cost model — independent
//! of the DP's grouping, memoization, pruning and caching — and computes the
//! true minimum step cost. Both search engines (optimized and reference)
//! must land exactly on that minimum, and when the optimum is unique they
//! must reproduce the oracle's spec assignment verbatim.

mod common;

use tofu_core::coarsen::coarsen;
use tofu_core::dp::{search, unoptimized_search, DpOptions, ExtraInputs};
use tofu_core::spec::{
    input_fetch_bytes, legal_specs, output_bytes, respec_bytes, ConcreteOut, ConcreteReq,
    TensorSpec,
};
use tofu_core::strategies::{node_strategies, strategy_feasible, NodeStrategy, ShapeView};
use tofu_graph::{Graph, TensorId};

/// Mirror of the DP's element-wise requirement rule: an ewise class whose
/// spec splits dimension `d` needs every input split along `d` too (or
/// replicated inputs when the spec does not apply to the input's rank).
fn ewise_req(class_spec: TensorSpec, rank: usize) -> ConcreteReq {
    match class_spec {
        TensorSpec::Split(d) if d < rank => ConcreteReq::Split { dim: d, halo: 0.0 },
        _ => ConcreteReq::Replicated,
    }
}

struct OracleClass {
    members: Vec<tofu_graph::NodeId>,
    is_ewise: bool,
    strategies: Vec<NodeStrategy>,
}

struct Oracle {
    /// Bundle id per tensor.
    of_tensor: Vec<usize>,
    /// Legal specs per bundle.
    legal: Vec<Vec<TensorSpec>>,
    classes: Vec<OracleClass>,
}

/// Builds the oracle's independent view of the step: bundles (class outputs
/// share a spec, everything else is a singleton) and per-class strategy
/// lists. Returns `None` when some class has no feasible strategy — the
/// searches must fail on such graphs, which the caller asserts separately.
fn build_oracle(g: &Graph, view: &ShapeView, ways: usize) -> Option<Oracle> {
    let cg = coarsen(g);
    let mut of_tensor = vec![usize::MAX; view.len()];
    let mut class_bundle = std::collections::BTreeMap::new();
    let mut count = 0usize;
    for id in g.node_ids() {
        let out = g.node(id).output;
        let b = *class_bundle.entry(cg.class_of[id.0]).or_insert_with(|| {
            count += 1;
            count - 1
        });
        of_tensor[out.0] = b;
    }
    for slot in of_tensor.iter_mut() {
        if *slot == usize::MAX {
            *slot = count;
            count += 1;
        }
    }

    let mut legal: Vec<Option<Vec<TensorSpec>>> = vec![None; count];
    for t in 0..view.len() {
        let specs = legal_specs(view.shape(TensorId(t)), ways);
        let slot = &mut legal[of_tensor[t]];
        *slot = Some(match slot.take() {
            None => specs,
            Some(prev) => prev.into_iter().filter(|s| specs.contains(s)).collect(),
        });
    }
    let legal: Vec<Vec<TensorSpec>> = legal
        .into_iter()
        .map(|l| {
            let l = l.unwrap();
            if l.is_empty() { vec![TensorSpec::Replicated] } else { l }
        })
        .collect();

    let mut classes = Vec::new();
    for (ci, members) in cg.class_nodes.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let is_ewise = cg.class_is_ewise[ci];
        let strategies = if is_ewise {
            Vec::new()
        } else {
            let rep = members[0];
            let out_shape = view.shape(g.node(rep).output).clone();
            let all = node_strategies(g, rep, view).ok()?;
            let feasible: Vec<NodeStrategy> =
                all.into_iter().filter(|s| strategy_feasible(s, &out_shape, ways)).collect();
            if feasible.is_empty() {
                return None;
            }
            feasible
        };
        classes.push(OracleClass { members: members.clone(), is_ewise, strategies });
    }
    Some(Oracle { of_tensor, legal, classes })
}

/// Cost of one full spec assignment, summed per class exactly as the cost
/// model defines it (min over the class's shared strategies).
fn assignment_cost(
    g: &Graph,
    view: &ShapeView,
    oracle: &Oracle,
    assign: &[TensorSpec],
    ways: usize,
) -> f64 {
    let spec = |t: TensorId| assign[oracle.of_tensor[t.0]];
    let mut total = 0.0;
    for class in &oracle.classes {
        if class.is_ewise {
            let class_spec = spec(g.node(class.members[0]).output);
            for &m in &class.members {
                for &t in &g.node(m).inputs {
                    let shape = view.shape(t);
                    let req = ewise_req(class_spec, shape.rank());
                    total += input_fetch_bytes(shape, spec(t), &req, ways);
                }
            }
            continue;
        }
        let mut best = f64::INFINITY;
        for st in &class.strategies {
            let mut c = 0.0;
            for &m in &class.members {
                let node = g.node(m);
                for (i, &t) in node.inputs.iter().enumerate() {
                    let req = st.inputs.get(i).cloned().unwrap_or(ConcreteReq::Unused);
                    c += input_fetch_bytes(view.shape(t), spec(t), &req, ways);
                }
                let out_shape = view.shape(node.output);
                c += match st.out {
                    ConcreteOut::Split(d) => {
                        respec_bytes(out_shape, TensorSpec::Split(d), spec(node.output), ways)
                    }
                    ConcreteOut::Reduce => output_bytes(out_shape, ConcreteOut::Reduce, ways),
                };
            }
            if c < best {
                best = c;
            }
        }
        total += best;
    }
    total
}

/// Exhaustively enumerates every bundle assignment. Returns the minimum
/// cost, the per-tensor argmin specs, and whether the optimum is unique
/// (no other assignment within a small relative tolerance of the minimum).
fn exhaustive_min(
    g: &Graph,
    view: &ShapeView,
    oracle: &Oracle,
    ways: usize,
) -> (f64, Vec<TensorSpec>, bool) {
    let bundles = oracle.legal.len();
    let mut idx = vec![0usize; bundles];
    let mut assign: Vec<TensorSpec> = oracle.legal.iter().map(|l| l[0]).collect();
    let mut costs: Vec<f64> = Vec::new();
    let mut best = f64::INFINITY;
    let mut best_specs = Vec::new();
    loop {
        let c = assignment_cost(g, view, oracle, &assign, ways);
        costs.push(c);
        if c < best {
            best = c;
            best_specs = (0..view.len())
                .map(|t| assign[oracle.of_tensor[t]])
                .collect();
        }
        // Odometer increment over the bundle spec choices.
        let mut b = 0;
        loop {
            if b == bundles {
                let tol = best.abs() * 1e-9 + 1e-6;
                let ties = costs.iter().filter(|&&c| c <= best + tol).count();
                return (best, best_specs, ties == 1);
            }
            idx[b] += 1;
            if idx[b] < oracle.legal[b].len() {
                assign[b] = oracle.legal[b][idx[b]];
                break;
            }
            idx[b] = 0;
            assign[b] = oracle.legal[b][0];
            b += 1;
        }
    }
}

/// Runs both engines and the oracle on one graph and cross-checks them.
fn check_graph(g: &Graph, ways: usize) -> bool {
    let view = ShapeView::from_graph(g);
    let cg = coarsen(g);
    let extra = ExtraInputs::new();
    // Exact settings: no beam truncation, no state abort, full internal
    // enumeration — the oracle certifies the *exact* optimum.
    let opts = DpOptions {
        ways,
        state_bound: 50_000_000,
        internal_bound: 1 << 22,
        beam: 50_000_000,
        ..Default::default()
    };
    let ref_opts = DpOptions { tuning: tofu_core::SearchTuning::reference(), ..opts };

    let oracle = build_oracle(g, &view, ways);
    let optimized = search(g, &view, &cg, &extra, &opts);
    let reference = unoptimized_search(g, &view, &cg, &extra, &ref_opts, None);

    let Some(oracle) = oracle else {
        assert!(optimized.is_err(), "oracle found no feasible strategy but optimized succeeded");
        assert!(reference.is_err(), "oracle found no feasible strategy but reference succeeded");
        return false;
    };
    // Skip pathologically large products; the suite keeps graphs small
    // enough that this never drops more than the occasional seed.
    let product: f64 = oracle.legal.iter().map(|l| l.len() as f64).product();
    if product > 250_000.0 {
        return false;
    }

    let (true_min, best_specs, unique) = exhaustive_min(g, &view, &oracle, ways);
    let optimized = optimized.expect("oracle found a feasible assignment, search must too");
    let reference = reference.expect("oracle found a feasible assignment, search must too");

    let tol = true_min.abs() * 1e-9 + 1e-6;
    assert!(
        (optimized.comm_bytes - true_min).abs() <= tol,
        "optimized cost {} != exhaustive minimum {true_min} (ways {ways})",
        optimized.comm_bytes,
    );
    assert!(
        (reference.comm_bytes - true_min).abs() <= tol,
        "reference cost {} != exhaustive minimum {true_min} (ways {ways})",
        reference.comm_bytes,
    );
    assert_eq!(
        optimized.comm_bytes.to_bits(),
        reference.comm_bytes.to_bits(),
        "engines disagree bit-for-bit (ways {ways})"
    );
    if unique {
        assert_eq!(
            optimized.tensor_spec, best_specs,
            "unique optimum but optimized picked a different plan (ways {ways})"
        );
        assert_eq!(
            reference.tensor_spec, best_specs,
            "unique optimum but reference picked a different plan (ways {ways})"
        );
    }
    unique
}

#[test]
fn dp_matches_exhaustive_minimum_on_random_graphs() {
    let mut checked = 0usize;
    let mut unique_hits = 0usize;
    for seed in 0..60u64 {
        let ops = 3 + (seed % 6) as usize; // 3..=8 operator nodes
        let g = common::random_dag(seed.wrapping_mul(0x9E3779B97F4A7C15), ops);
        for ways in [2usize, 3] {
            checked += 1;
            if check_graph(&g, ways) {
                unique_hits += 1;
            }
        }
    }
    // The suite must actually exercise the unique-optimum plan-equality
    // branch, not just the cost check.
    assert!(checked >= 100, "too few oracle checks ran: {checked}");
    assert!(unique_hits >= 10, "too few unique-optimum cases: {unique_hits}");
}

#[test]
fn dp_matches_exhaustive_minimum_on_conv_towers() {
    let mut unique_hits = 0usize;
    for seed in 0..12u64 {
        let g = common::conv_tower(seed.wrapping_mul(0xA24BAED4963EE407), 1 + (seed % 3) as usize);
        for ways in [2usize, 4] {
            if check_graph(&g, ways) {
                unique_hits += 1;
            }
        }
    }
    assert!(unique_hits >= 3, "too few unique-optimum conv cases: {unique_hits}");
}
