//! Dataflow graph substrate: the MXNet/NNVM stand-in that Tofu transforms.
//!
//! This crate provides everything the partitioner (in `tofu-core`) assumes
//! from the host framework:
//!
//! - a single-output operator [`Graph`] IR with immediate shape inference,
//! - an extensible operator [`registry`] (~130 operators calibrated to the
//!   MXNet v0.11 catalogue of §4.1, each bundling shape inference, a TDL
//!   description, a gradient builder and a flop estimate),
//! - reverse-mode [`autodiff`] that appends tagged backward nodes (the tags
//!   drive the coarsening pass of §5.1),
//! - a dependency-driven static [`memplan`] memory planner (§6), and
//! - a CPU [`exec`] executor used to *validate* that partitioned graphs
//!   compute exactly what the original graph computes.
//!
//! # Examples
//!
//! Build and differentiate a one-layer network:
//!
//! ```
//! use tofu_graph::{autodiff, Attrs, Graph};
//! use tofu_tensor::Shape;
//!
//! let mut g = Graph::new();
//! let x = g.add_input("x", Shape::new(vec![4, 8]));
//! let w = g.add_weight("w", Shape::new(vec![8, 2]));
//! let labels = g.add_input("labels", Shape::new(vec![4]));
//! let logits = g.add_op("matmul", "fc", &[x, w], Attrs::new()).unwrap();
//! let loss = g.add_op("softmax_ce", "loss", &[logits, labels], Attrs::new()).unwrap();
//! let grads = autodiff::backward(&mut g, loss, &[w]).unwrap();
//! assert!(grads.grad(w).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrs;
pub mod autodiff;
mod error;
pub mod exec;
pub mod graph;
pub mod memplan;
pub mod ops;
pub mod registry;

pub use attrs::{AttrValue, Attrs};
pub use autodiff::{backward, GradInfo};
pub use error::GraphError;
pub use exec::{execute_node, Executor};
pub use graph::{Graph, Node, NodeId, NodeTags, TensorId, TensorKind, TensorMeta};
pub use memplan::{plan_buffers, plan_memory, plan_memory_for_schedule, BufferPlan, MemPlan, SlotAction};
pub use registry::{coverage, lookup, register, Coverage, OpCategory, OpDef};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
