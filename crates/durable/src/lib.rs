//! Durable checkpoint store for the Tofu runtime.
//!
//! The runtime's checkpoint/restart machinery (PR 2) and elastic reshard
//! path (PRs 5/7) keep every consistent checkpoint in the coordinating
//! process's heap — kill the process and all progress dies with it. This
//! crate is the missing durability layer:
//!
//! - [`codec`]: checksummed binary shard encoding and a checksummed,
//!   versioned JSON manifest; every decode path returns a typed
//!   [`CodecError`](codec::CodecError), never panics.
//! - [`store`]: the [`BlobStore`] boundary. [`DirStore`] writes through
//!   write-temp → fsync → atomic-rename → fsync-parent, so each blob is
//!   all-or-nothing; [`MemStore`] keeps the contract in memory for tests.
//! - [`commit`]: the commit protocol (shards first, manifest last — the
//!   manifest *is* the commit point), newest-valid discovery with typed
//!   [`RejectReason`]s for every skipped candidate, and retention GC.
//! - [`fault`]: deterministic disk-fault injection ([`FaultyStore`]) —
//!   torn writes, bit flips, missing shards, stale and duplicate
//!   manifests — one-shot and seeded like the runtime's `FaultRng` faults.
//!
//! Checkpoints are *plan-independent* (full tensor values, not per-worker
//! shards), so a restarted process may validate the newest checkpoint and
//! reshard it onto a fleet of a different width. The runtime's
//! `run_with_durable_recovery` drives this crate end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod commit;
pub mod fault;
pub mod store;

pub use codec::{fnv1a64, CodecError, Manifest, ShardEntry};
pub use commit::{
    gc, recover_latest, write_checkpoint, DurableCheckpoint, Recovery, RejectReason,
    RejectedCheckpoint, WriteStats,
};
pub use fault::{DiskFault, DiskFaultPlan, FaultyStore};
pub use store::{BlobStore, DirStore, MemStore};
