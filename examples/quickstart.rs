//! Quickstart: build a training graph, let Tofu partition it for 8 GPUs,
//! and inspect the plan.
//!
//! Run with: `cargo run --release --example quickstart`

use tofu::core::{partition, PartitionOptions, TensorSpec};
use tofu::models::{mlp, MlpConfig};

fn main() {
    // A 3-layer MLP training graph: forward, backward and SGD updates.
    let model = mlp(&MlpConfig {
        batch: 256,
        dims: vec![1024, 4096, 4096],
        classes: 64,
        with_updates: true,
    })
    .expect("model builds");
    println!(
        "training graph: {} operators, {} tensors, {:.1} MB of weights",
        model.graph.num_nodes(),
        model.graph.num_tensors(),
        model.weight_bytes() as f64 / 1e6
    );

    // Partition across 8 workers. The recursive search halves every tensor
    // three times (8 = 2 x 2 x 2), each step choosing one dimension per
    // tensor and one parallelization strategy per operator.
    let plan = partition(&model.graph, &PartitionOptions { workers: 8, ..Default::default() })
        .expect("partition succeeds");
    println!(
        "\nplan: {} recursive steps, searched in {:?}",
        plan.steps.len(),
        plan.search_time
    );
    println!(
        "communication per iteration: {:.1} MB (per-step deltas: {:?} MB)",
        plan.total_comm_bytes() / 1e6,
        plan.step_costs().iter().map(|c| (c / 1e6).round()).collect::<Vec<_>>()
    );

    // How did each weight end up tiled?
    for &w in &model.weights {
        let meta = model.graph.tensor(w);
        if meta.shape.rank() < 2 {
            continue;
        }
        let shard = plan.shard_shape(&meta.shape, w);
        let steps: Vec<String> = plan.tiling[w.0]
            .iter()
            .map(|d| match d {
                Some(d) => format!("dim{d}"),
                None => "repl".to_string(),
            })
            .collect();
        println!(
            "  {:<6} {} -> shard {} (split {})",
            meta.name,
            meta.shape,
            shard,
            steps.join(" then ")
        );
    }

    // Every tensor's per-worker footprint is 1/8th when fully split — the
    // paper's core memory claim (§2).
    let fully_split = model
        .graph
        .tensor_ids()
        .filter(|&t| (plan.shard_fraction(t) - 0.125).abs() < 1e-9)
        .count();
    println!(
        "\n{} of {} tensors are stored at 1/8 of their original size per GPU",
        fully_split,
        model.graph.num_tensors()
    );
    let _ = TensorSpec::Replicated; // (re-exported for plan inspection)
}
