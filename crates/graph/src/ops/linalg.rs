//! Dense linear algebra operators: the matmul family.
//!
//! `matmul` is the workhorse of the RNN benchmarks. Its TDL description
//! yields the three classic strategies — row split, column split, and the
//! inner-product split with output reduction that the paper shows ICML18
//! misses (§7.3).

use tofu_tdl::{DescBuilder, Reducer, TdlDesc};
use tofu_tensor::Shape;

use crate::attrs::Attrs;
use crate::graph::TensorId;
use crate::registry::{GradCtx, OpCategory, OpDef};
use crate::Result;

fn shape_matmul(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    let (a, b) = two_rank2(ins)?;
    if a.dim(1) != b.dim(0) {
        return Err(format!("inner dims {} vs {}", a.dim(1), b.dim(0)));
    }
    Ok(Shape::new(vec![a.dim(0), b.dim(1)]))
}

fn shape_matmul_tn(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    let (a, b) = two_rank2(ins)?;
    if a.dim(0) != b.dim(0) {
        return Err(format!("inner dims {} vs {}", a.dim(0), b.dim(0)));
    }
    Ok(Shape::new(vec![a.dim(1), b.dim(1)]))
}

fn shape_matmul_nt(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    let (a, b) = two_rank2(ins)?;
    if a.dim(1) != b.dim(1) {
        return Err(format!("inner dims {} vs {}", a.dim(1), b.dim(1)));
    }
    Ok(Shape::new(vec![a.dim(0), b.dim(0)]))
}

fn two_rank2(ins: &[Shape]) -> std::result::Result<(&Shape, &Shape), String> {
    if ins.len() != 2 {
        return Err(format!("expected 2 inputs, got {}", ins.len()));
    }
    if ins[0].rank() != 2 || ins[1].rank() != 2 {
        return Err(format!("expected rank-2 operands, got {} and {}", ins[0], ins[1]));
    }
    Ok((&ins[0], &ins[1]))
}

fn shape_transpose(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 || ins[0].rank() != 2 {
        return Err("transpose expects one rank-2 input".into());
    }
    Ok(Shape::new(vec![ins[0].dim(1), ins[0].dim(0)]))
}

fn shape_batch_matmul(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 3 || ins[1].rank() != 3 {
        return Err("batch_matmul expects two rank-3 inputs".into());
    }
    if ins[0].dim(0) != ins[1].dim(0) || ins[0].dim(2) != ins[1].dim(1) {
        return Err(format!("incompatible batch matmul shapes {} and {}", ins[0], ins[1]));
    }
    Ok(Shape::new(vec![ins[0].dim(0), ins[0].dim(1), ins[1].dim(2)]))
}

fn shape_batch_matmul_tn(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 3 || ins[1].rank() != 3 {
        return Err("batch_matmul_tn expects two rank-3 inputs".into());
    }
    if ins[0].dim(0) != ins[1].dim(0) || ins[0].dim(1) != ins[1].dim(1) {
        return Err(format!("incompatible batch matmul_tn shapes {} and {}", ins[0], ins[1]));
    }
    Ok(Shape::new(vec![ins[0].dim(0), ins[0].dim(2), ins[1].dim(2)]))
}

fn shape_batch_matmul_nt(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 3 || ins[1].rank() != 3 {
        return Err("batch_matmul_nt expects two rank-3 inputs".into());
    }
    if ins[0].dim(0) != ins[1].dim(0) || ins[0].dim(2) != ins[1].dim(2) {
        return Err(format!("incompatible batch matmul_nt shapes {} and {}", ins[0], ins[1]));
    }
    Ok(Shape::new(vec![ins[0].dim(0), ins[0].dim(1), ins[1].dim(1)]))
}

// ---- TDL descriptions ------------------------------------------------------

fn tdl_matmul(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    let mut b = DescBuilder::new("matmul", &[2, 2]);
    let (i, j) = (b.output_var("i"), b.output_var("j"));
    let k = b.reduce_var("k");
    let body = b.input(0, &[i.at(), k.at()]) * b.input(1, &[k.at(), j.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_matmul_tn(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // out[i, j] = Σ_k A[k, i] · B[k, j] (Aᵀ·B).
    let mut b = DescBuilder::new("matmul_tn", &[2, 2]);
    let (i, j) = (b.output_var("i"), b.output_var("j"));
    let k = b.reduce_var("k");
    let body = b.input(0, &[k.at(), i.at()]) * b.input(1, &[k.at(), j.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_matmul_nt(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // out[i, j] = Σ_k A[i, k] · B[j, k] (A·Bᵀ).
    let mut b = DescBuilder::new("matmul_nt", &[2, 2]);
    let (i, j) = (b.output_var("i"), b.output_var("j"));
    let k = b.reduce_var("k");
    let body = b.input(0, &[i.at(), k.at()]) * b.input(1, &[j.at(), k.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_transpose(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    let mut b = DescBuilder::new("transpose", &[2]);
    let (i, j) = (b.output_var("i"), b.output_var("j"));
    let body = b.input(0, &[j.at(), i.at()]);
    b.build(body).ok()
}

fn tdl_batch_matmul(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    let mut b = DescBuilder::new("batch_matmul", &[3, 3]);
    let (bb, i, j) = (b.output_var("b"), b.output_var("i"), b.output_var("j"));
    let k = b.reduce_var("k");
    let body = b.input(0, &[bb.at(), i.at(), k.at()]) * b.input(1, &[bb.at(), k.at(), j.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_batch_matmul_tn(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // out[b, i, j] = Σ_k A[b, k, i] · B[b, k, j].
    let mut b = DescBuilder::new("batch_matmul_tn", &[3, 3]);
    let (bb, i, j) = (b.output_var("b"), b.output_var("i"), b.output_var("j"));
    let k = b.reduce_var("k");
    let body = b.input(0, &[bb.at(), k.at(), i.at()]) * b.input(1, &[bb.at(), k.at(), j.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_batch_matmul_nt(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // out[b, i, j] = Σ_k A[b, i, k] · B[b, j, k].
    let mut b = DescBuilder::new("batch_matmul_nt", &[3, 3]);
    let (bb, i, j) = (b.output_var("b"), b.output_var("i"), b.output_var("j"));
    let k = b.reduce_var("k");
    let body = b.input(0, &[bb.at(), i.at(), k.at()]) * b.input(1, &[bb.at(), j.at(), k.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

// ---- Gradients --------------------------------------------------------------

fn grad_matmul(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    // C = A·B: dA = dC·Bᵀ, dB = Aᵀ·dC.
    let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
    let da = ctx.op("matmul_nt", &[ctx.out_grad, b], Attrs::new())?;
    let db = ctx.op("matmul_tn", &[a, ctx.out_grad], Attrs::new())?;
    Ok(vec![Some(da), Some(db)])
}

fn grad_matmul_tn(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    // C = Aᵀ·B: dA = B·dCᵀ, dB = A·dC.
    let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
    let da = ctx.op("matmul_nt", &[b, ctx.out_grad], Attrs::new())?;
    let db = ctx.op("matmul", &[a, ctx.out_grad], Attrs::new())?;
    Ok(vec![Some(da), Some(db)])
}

fn grad_matmul_nt(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    // C = A·Bᵀ: dA = dC·B, dB = dCᵀ·A.
    let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
    let da = ctx.op("matmul", &[ctx.out_grad, b], Attrs::new())?;
    let db = ctx.op("matmul_tn", &[ctx.out_grad, a], Attrs::new())?;
    Ok(vec![Some(da), Some(db)])
}

fn grad_transpose(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let dx = ctx.op("transpose", &[ctx.out_grad], Attrs::new())?;
    Ok(vec![Some(dx)])
}

fn grad_batch_matmul(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    // C[b] = A[b]·B[b]: dA[b] = dC[b]·B[b]ᵀ, dB[b] = A[b]ᵀ·dC[b].
    let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
    let da = ctx.op("batch_matmul_nt", &[ctx.out_grad, b], Attrs::new())?;
    let db = ctx.op("batch_matmul_tn", &[a, ctx.out_grad], Attrs::new())?;
    Ok(vec![Some(da), Some(db)])
}

fn grad_batch_matmul_tn(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    // C[b] = A[b]ᵀ·B[b]: dA[b] = B[b]·dC[b]ᵀ, dB[b] = A[b]·dC[b].
    let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
    let da = ctx.op("batch_matmul_nt", &[b, ctx.out_grad], Attrs::new())?;
    let db = ctx.op("batch_matmul", &[a, ctx.out_grad], Attrs::new())?;
    Ok(vec![Some(da), Some(db)])
}

fn grad_batch_matmul_nt(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    // C[b] = A[b]·B[b]ᵀ: dA[b] = dC[b]·B[b], dB[b] = dC[b]ᵀ·A[b].
    let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
    let da = ctx.op("batch_matmul", &[ctx.out_grad, b], Attrs::new())?;
    let db = ctx.op("batch_matmul_tn", &[ctx.out_grad, a], Attrs::new())?;
    Ok(vec![Some(da), Some(db)])
}

// ---- Flops -------------------------------------------------------------------

fn flops_matmul(ins: &[Shape], out: &Shape, _: &Attrs) -> f64 {
    // 2·M·N·K; K is whichever input dimension is not in the output.
    let k = (ins[0].volume() / out.dim(0).max(1)).max(ins[1].volume() / out.dim(1).max(1));
    2.0 * out.volume() as f64 * k as f64
}

fn flops_batch_matmul(ins: &[Shape], out: &Shape, _: &Attrs) -> f64 {
    let k = ins[0].dim(2);
    2.0 * out.volume() as f64 * k as f64
}

fn flops_copy(_: &[Shape], out: &Shape, _: &Attrs) -> f64 {
    out.volume() as f64
}

/// Returns the linear-algebra operator definitions.
pub fn defs() -> Vec<OpDef> {
    vec![
        OpDef {
            name: "matmul",
            category: OpCategory::Linalg,
            infer_shape: shape_matmul,
            tdl: Some(tdl_matmul),
            gradient: Some(grad_matmul),
            flops: flops_matmul,
        },
        OpDef {
            name: "matmul_tn",
            category: OpCategory::Linalg,
            infer_shape: shape_matmul_tn,
            tdl: Some(tdl_matmul_tn),
            gradient: Some(grad_matmul_tn),
            flops: flops_matmul,
        },
        OpDef {
            name: "matmul_nt",
            category: OpCategory::Linalg,
            infer_shape: shape_matmul_nt,
            tdl: Some(tdl_matmul_nt),
            gradient: Some(grad_matmul_nt),
            flops: flops_matmul,
        },
        OpDef {
            name: "transpose",
            category: OpCategory::Data,
            infer_shape: shape_transpose,
            tdl: Some(tdl_transpose),
            gradient: Some(grad_transpose),
            flops: flops_copy,
        },
        OpDef {
            name: "batch_matmul",
            category: OpCategory::Linalg,
            infer_shape: shape_batch_matmul,
            tdl: Some(tdl_batch_matmul),
            gradient: Some(grad_batch_matmul),
            flops: flops_batch_matmul,
        },
        OpDef {
            name: "batch_matmul_tn",
            category: OpCategory::Linalg,
            infer_shape: shape_batch_matmul_tn,
            tdl: Some(tdl_batch_matmul_tn),
            gradient: Some(grad_batch_matmul_tn),
            flops: |ins, out, _| 2.0 * out.volume() as f64 * ins[0].dim(1) as f64,
        },
        OpDef {
            name: "batch_matmul_nt",
            category: OpCategory::Linalg,
            infer_shape: shape_batch_matmul_nt,
            tdl: Some(tdl_batch_matmul_nt),
            gradient: Some(grad_batch_matmul_nt),
            flops: |ins, out, _| 2.0 * out.volume() as f64 * ins[0].dim(2) as f64,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_tdl::discover_strategies;

    #[test]
    fn matmul_shapes() {
        let a = Shape::new(vec![3, 4]);
        let b = Shape::new(vec![4, 5]);
        assert_eq!(
            shape_matmul(&[a.clone(), b.clone()], &Attrs::new()).unwrap(),
            Shape::new(vec![3, 5])
        );
        assert!(shape_matmul(&[b.clone(), b.clone()], &Attrs::new()).is_err());
        // Aᵀ·B: (4,3)ᵀ·(4,5) = (3,5).
        assert_eq!(
            shape_matmul_tn(&[Shape::new(vec![4, 3]), b.clone()], &Attrs::new()).unwrap(),
            Shape::new(vec![3, 5])
        );
        // A·Bᵀ: (3,4)·(5,4)ᵀ = (3,5).
        assert_eq!(
            shape_matmul_nt(&[a, Shape::new(vec![5, 4])], &Attrs::new()).unwrap(),
            Shape::new(vec![3, 5])
        );
    }

    #[test]
    fn matmul_tdl_has_reduction_strategy() {
        let desc = tdl_matmul(&[], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.iter().any(|st| st.output.is_reduce()));
    }

    #[test]
    fn transposed_variants_have_three_strategies_each() {
        for tdl in [tdl_matmul_tn, tdl_matmul_nt] {
            let desc = tdl(&[], &Attrs::new()).unwrap();
            let s = discover_strategies(&desc).unwrap();
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn batch_matmul_has_four_strategies() {
        let desc = tdl_batch_matmul(&[], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 4); // b, i, j, and reduce-k.
    }

    #[test]
    fn batch_matmul_transposed_variants_have_four_strategies() {
        for tdl in [tdl_batch_matmul_tn, tdl_batch_matmul_nt] {
            let desc = tdl(&[], &Attrs::new()).unwrap();
            let s = discover_strategies(&desc).unwrap();
            assert_eq!(s.len(), 4);
            assert!(s.iter().any(|st| st.output.is_reduce()));
            assert!(s.iter().any(|st| st.id == "split:b"), "batch dim splits");
        }
    }

    #[test]
    fn batch_matmul_transposed_shapes() {
        let a = Shape::new(vec![2, 4, 3]);
        let b = Shape::new(vec![2, 4, 5]);
        assert_eq!(
            shape_batch_matmul_tn(&[a.clone(), b], &Attrs::new()).unwrap(),
            Shape::new(vec![2, 3, 5])
        );
        let c = Shape::new(vec![2, 6, 3]);
        assert_eq!(
            shape_batch_matmul_nt(&[a.clone(), c], &Attrs::new()).unwrap(),
            Shape::new(vec![2, 4, 6])
        );
        assert!(shape_batch_matmul_nt(&[a.clone(), Shape::new(vec![2, 6, 4])], &Attrs::new())
            .is_err());
        assert!(shape_batch_matmul_tn(&[a, Shape::new(vec![3, 4, 5])], &Attrs::new()).is_err());
    }

    #[test]
    fn flops_counts_macs_twice() {
        let ins = [Shape::new(vec![3, 4]), Shape::new(vec![4, 5])];
        let out = Shape::new(vec![3, 5]);
        assert_eq!(flops_matmul(&ins, &out, &Attrs::new()), 2.0 * 3.0 * 4.0 * 5.0);
    }
}
